// Flits, packets and the phit that crosses a link each cycle.
//
// A Flit carries both the authoritative 64-bit wire image (what hardware —
// including a trojan — can see) and simulator-only sideband metadata used
// for bookkeeping, statistics and correctness checks. Obfuscation and ECC
// act on the wire image; sideband never touches a wire.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "noc/wire.hpp"

namespace htnoc {

/// Immutable description of a packet, shared by all of its flits.
struct PacketInfo {
  PacketId id = kInvalidPacket;
  NodeId src_core = kInvalidNode;
  NodeId dest_core = kInvalidNode;
  RouterId src_router = kInvalidRouter;
  RouterId dest_router = kInvalidRouter;
  std::uint32_t mem_addr = 0;
  PacketClass pclass = PacketClass::kData;
  TdmDomain domain = TdmDomain::kD1;
  /// Originating thread/process id carried in the header (6 bits on the
  /// wire). Defaults to the source core when left at kAutoThread.
  std::uint8_t thread = kAutoThread;
  int length = 1;  ///< Number of flits.
  Cycle inject_cycle = 0;

  static constexpr std::uint8_t kAutoThread = 0xFF;
};

/// One flit. Copyable value type; buffers own their flits.
struct Flit {
  // --- sideband (simulator bookkeeping; not on the wire) ---
  PacketId packet = kInvalidPacket;
  int seq = 0;  ///< Index within the packet, 0-based.
  FlitType type = FlitType::kHeadTail;
  NodeId src_core = kInvalidNode;
  NodeId dest_core = kInvalidNode;
  RouterId src_router = kInvalidRouter;
  RouterId dest_router = kInvalidRouter;
  std::uint32_t mem_addr = 0;
  PacketClass pclass = PacketClass::kData;
  TdmDomain domain = TdmDomain::kD1;
  std::uint8_t thread = 0;
  int length = 1;
  Cycle inject_cycle = 0;
  VcId vc = 0;              ///< Current VC assignment (rewritten per hop).
  bool route_phase_down = false;  ///< up*/down* phase bit (set after a down hop).

  // --- wire image ---
  std::uint64_t wire = 0;  ///< The 64 data bits as transmitted (pre-obfuscation).

  [[nodiscard]] bool is_head() const noexcept { return htnoc::is_head(type); }
  [[nodiscard]] bool is_tail() const noexcept { return htnoc::is_tail(type); }

  /// Globally unique identity of this flit (packet, seq).
  [[nodiscard]] std::uint64_t flit_uid() const noexcept {
    return (packet << 8) ^ static_cast<std::uint64_t>(seq & 0xFF);
  }
};

/// How a phit was obfuscated before ECC encoding (Sec. IV-A of the paper).
/// This tag models the side-band notification between the upstream L-Ob
/// module and the downstream de-obfuscator; the wire itself only carries the
/// transformed codeword.
enum class ObfMethod : std::uint8_t {
  kNone = 0,
  kInvert,    ///< Bitwise complement inside the granularity window.
  kShuffle,   ///< Fixed rotation inside the granularity window.
  kScramble,  ///< XOR with a partner flit's wire image.
  kReorder,   ///< Scheduling-only: hold this flit and let later flits go
              ///< first (paper Sec. I "flit-reordering"). Defeats triggers
              ///< keyed on transmission order/position; content-keyed
              ///< trojans like TASP are unaffected by it.
};

enum class ObfGranularity : std::uint8_t {
  kFlit = 0,  ///< All 64 wire bits.
  kHeader,    ///< Low 42 bits (the DPI target region).
  kPayload,   ///< High 22 bits.
};

struct ObfuscationTag {
  ObfMethod method = ObfMethod::kNone;
  ObfGranularity granularity = ObfGranularity::kFlit;
  /// For kScramble: identity of the partner flit whose wire image was XORed.
  PacketId partner_packet = kInvalidPacket;
  int partner_seq = 0;

  [[nodiscard]] bool active() const noexcept { return method != ObfMethod::kNone; }
};

/// The unit that crosses a link in one cycle: a 72-bit SECDED codeword plus
/// sideband metadata.
struct LinkPhit {
  Flit flit;             ///< Owner flit (sideband copy).
  Codeword72 codeword;   ///< ECC(obfuscate(flit.wire)) after fault injection.
  ObfuscationTag obf;    ///< Control-channel obfuscation notification.
  Cycle sent_cycle = 0;  ///< Cycle LT began.
  int attempt = 0;       ///< 0 for first transmission, >0 for retransmissions.
};

/// Split a packet into flits with correctly packed wire images. The head
/// flit's wire word carries the header fields; body/tail flits carry payload
/// words (caller-provided or synthesized), each stamped with its flit type.
[[nodiscard]] std::vector<Flit> packetize(const PacketInfo& info,
                                          const std::vector<std::uint64_t>& payload);

std::string to_string(ObfMethod m);
std::string to_string(ObfGranularity g);

}  // namespace htnoc
