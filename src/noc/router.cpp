#include "noc/router.hpp"

#include <algorithm>

#include "noc/protocol.hpp"

namespace htnoc {

Router::Router(const NocConfig& cfg, RouterId id,
               const RoutingFunction* routing, ArbiterKind arbiter_kind)
    : cfg_(cfg), id_(id), routing_(routing), codec_(cfg.ecc_scheme) {
  HTNOC_EXPECT(routing != nullptr);
  const int ports = cfg_.ports_per_router();
  inputs_.reserve(static_cast<std::size_t>(ports));
  outputs_.reserve(static_cast<std::size_t>(ports));
  for (int p = 0; p < ports; ++p) {
    inputs_.push_back(std::make_unique<InputUnit>(cfg_, id_, p));
    outputs_.push_back(std::make_unique<OutputUnit>(
        cfg_, "r" + std::to_string(id_) + ".out" + std::to_string(p)));
  }
  const int nreq = ports * cfg_.vcs_per_port;
  for (int i = 0; i < nreq; ++i) {
    va_arbiters_.push_back(make_arbiter(arbiter_kind, nreq));
  }
  for (int p = 0; p < ports; ++p) {
    sa_input_arbiters_.push_back(make_arbiter(arbiter_kind, cfg_.vcs_per_port));
    sa_output_arbiters_.push_back(make_arbiter(arbiter_kind, ports));
  }
  // Arbitration scratch is sized once here and reused every cycle; the
  // request bitmaps are all-false between stage calls (each stage wipes
  // exactly the rows it touched).
  va_requests_.assign(static_cast<std::size_t>(nreq),
                      std::vector<bool>(static_cast<std::size_t>(nreq), false));
  va_any_.assign(static_cast<std::size_t>(nreq), false);
  va_touched_.reserve(static_cast<std::size_t>(nreq));
  sa_winner_vc_.assign(static_cast<std::size_t>(ports), -1);
  sa_vc_req_.assign(static_cast<std::size_t>(cfg_.vcs_per_port), false);
  sa_port_req_.assign(static_cast<std::size_t>(ports), false);
  lane_cw_.reserve(static_cast<std::size_t>(ports));
  lane_res_.reserve(static_cast<std::size_t>(ports));
  lane_words_.reserve(static_cast<std::size_t>(ports));
  lane_ports_.reserve(static_cast<std::size_t>(ports));
}

void Router::set_detector(ThreatDetector* det) {
  for (auto& in : inputs_) in->set_detector(det);
}

void Router::set_lob(int port, LObController* lob) {
  outputs_[static_cast<std::size_t>(port)]->set_lob(lob);
}

void Router::set_trace(trace::Tap tap) {
  for (auto& in : inputs_) in->set_trace(tap, trace::Scope::kRouter, id_);
  for (std::size_t p = 0; p < outputs_.size(); ++p) {
    outputs_[p]->set_trace(tap, trace::Scope::kRouter, id_,
                           static_cast<std::int8_t>(p));
  }
}

void Router::drain(Cycle now) {
  for (auto& out : outputs_) out->drain_control(now);
  for (auto& in : inputs_) in->drain_link(now);
}

void Router::compute(Cycle now) {
  // Reverse-channel control first so freed slots/credits are usable this
  // cycle (they were sent >= 1 cycle ago).
  for (auto& out : outputs_) out->process_staged_control(now);
  // BW: accept phit arrivals into input buffers, SECDED-decoding all ports'
  // staged codewords as one contiguous lane batch.
  batched_bw(now);
  stage_rc(now);
  stage_va(now);
  stage_sa_st(now);
  batched_lt(now);
}

void Router::batched_bw(Cycle now) {
  // Gather staged codewords across every input port, decode them in one
  // batch (one scheme dispatch, contiguous LUT passes), then let each port
  // consume its slice. Per-port behavior — ACK/NACK order, detector
  // callbacks, trace events — is identical to per-phit decoding because the
  // decode is pure and the slices preserve staging order.
  lane_cw_.clear();
  for (auto& in : inputs_) in->append_staged_codewords(lane_cw_);
  if (lane_cw_.empty()) {
    for (auto& in : inputs_) in->process_staged(now);
    return;
  }
  lane_res_.resize(lane_cw_.size());
  codec_.decode_batch(lane_cw_.data(), lane_res_.data(), lane_cw_.size());
  std::size_t offset = 0;
  for (auto& in : inputs_) {
    const std::size_t n = in->staged_count();
    in->process_staged(now, n > 0 ? lane_res_.data() + offset : nullptr);
    offset += n;
  }
}

void Router::batched_lt(Cycle now) {
  // Plan every output port's link traversal first (slot choice, obfuscation,
  // L-Ob planning — port-ascending, exactly the pre-batch call order), then
  // SECDED-encode all planned words as one lane batch, then commit the
  // sends in the same port order so trace/injector sequences are unchanged.
  lane_words_.clear();
  lane_ports_.clear();
  const int ports = num_ports();
  for (int p = 0; p < ports; ++p) {
    OutputUnit& out = *outputs_[static_cast<std::size_t>(p)];
    if (out.plan_lt(now)) {
      lane_words_.push_back(out.planned_word());
      lane_ports_.push_back(p);
    }
  }
  if (lane_words_.empty()) return;
  lane_cw_.resize(lane_words_.size());
  codec_.encode_batch(lane_words_.data(), lane_cw_.data(), lane_words_.size());
  for (std::size_t i = 0; i < lane_ports_.size(); ++i) {
    outputs_[static_cast<std::size_t>(lane_ports_[i])]->commit_lt(now,
                                                                 lane_cw_[i]);
  }
}

void Router::step(Cycle now) {
  drain(now);
  compute(now);
}

void Router::stage_rc(Cycle now) {
  for (auto& in : inputs_) {
    for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
      auto& buf = in->vcbuf(vc);
      if (buf.streams.empty()) continue;
      auto& stream = buf.streams.front();
      if (stream.state != InputUnit::PacketStream::State::kNeedRoute) continue;
      if (!stream.head_present()) continue;
      const Flit& head = in->front_flit(vc);
      const RouteDecision dec = routing_->route(id_, head);
      ++stats_.rc_computations;
      if (dec.out_port < 0) {
        ++stats_.rc_stalls_unroutable;
        continue;  // retry next cycle (e.g. mid-reconfiguration)
      }
      stream.out_port = dec.out_port;
      stream.phase_down_next = dec.next_phase_down;
      stream.state = InputUnit::PacketStream::State::kWaitVA;
      stream.va_eligible =
          in->front_arrival(vc) + static_cast<Cycle>(cfg_.stage_bw_rc);
      (void)now;
    }
  }
}

void Router::stage_va(Cycle now) {
  const int ports = num_ports();
  const int nreq = ports * cfg_.vcs_per_port;

  // Each waiting input VC nominates one candidate output VC.
  // va_requests_[va_arbiter_index] is the bitmap of requesting
  // (in_port, in_vc); rows are persistent scratch, all-false on entry.
  for (int ip = 0; ip < ports; ++ip) {
    for (int ivc = 0; ivc < cfg_.vcs_per_port; ++ivc) {
      auto& buf = inputs_[static_cast<std::size_t>(ip)]->vcbuf(ivc);
      if (buf.streams.empty()) continue;
      auto& stream = buf.streams.front();
      if (stream.state != InputUnit::PacketStream::State::kWaitVA) continue;
      if (stream.va_eligible > now) continue;
      const Flit& head = inputs_[static_cast<std::size_t>(ip)]->front_flit(ivc);
      const auto [lo, hi] = allowed_vc_range(head.pclass, head.domain, cfg_);
      OutputUnit& out = *outputs_[static_cast<std::size_t>(stream.out_port)];
      int candidate = -1;
      for (int ovc = lo; ovc <= hi; ++ovc) {
        if (out.vc_free(ovc)) {
          candidate = ovc;
          break;
        }
      }
      if (candidate < 0) {
        ++stats_.va_stalls_no_free_vc;
        continue;  // all output VCs of the class are held
      }
      const int ai = va_arbiter_index(stream.out_port, candidate);
      va_requests_[static_cast<std::size_t>(ai)]
                  [static_cast<std::size_t>(requester_index(ip, ivc))] = true;
      if (!va_any_[static_cast<std::size_t>(ai)]) {
        va_any_[static_cast<std::size_t>(ai)] = true;
        va_touched_.push_back(ai);
      }
    }
  }
  if (va_touched_.empty()) return;

  for (int ai = 0; ai < nreq; ++ai) {
    if (!va_any_[static_cast<std::size_t>(ai)]) continue;
    Arbiter& arb = *va_arbiters_[static_cast<std::size_t>(ai)];
    const int winner = arb.arbitrate(va_requests_[static_cast<std::size_t>(ai)]);
    if (winner < 0) continue;
    arb.update(winner);
    const int ip = winner / cfg_.vcs_per_port;
    const int ivc = winner % cfg_.vcs_per_port;
    const int out_port = ai / cfg_.vcs_per_port;
    const int out_vc = ai % cfg_.vcs_per_port;
    auto& stream = inputs_[static_cast<std::size_t>(ip)]->vcbuf(ivc).streams.front();
    outputs_[static_cast<std::size_t>(out_port)]->allocate_vc(out_vc);
    stream.out_vc = out_vc;
    stream.state = InputUnit::PacketStream::State::kActive;
    stream.sa_eligible = now + static_cast<Cycle>(cfg_.stage_va);
    ++stats_.va_grants;
  }

  // Leave the scratch all-false for the next cycle.
  for (const int ai : va_touched_) {
    auto& row = va_requests_[static_cast<std::size_t>(ai)];
    std::fill(row.begin(), row.end(), false);
    va_any_[static_cast<std::size_t>(ai)] = false;
  }
  va_touched_.clear();
}

void Router::stage_sa_st(Cycle now) {
  const int ports = num_ports();

  // Stage 1: each input port picks one ready VC. sa_vc_req_ is persistent
  // scratch, wiped per port after arbitration.
  std::fill(sa_winner_vc_.begin(), sa_winner_vc_.end(), -1);
  for (int ip = 0; ip < ports; ++ip) {
    InputUnit& in = *inputs_[static_cast<std::size_t>(ip)];
    bool any = false;
    for (int ivc = 0; ivc < cfg_.vcs_per_port; ++ivc) {
      auto& buf = in.vcbuf(ivc);
      if (buf.streams.empty()) continue;
      auto& stream = buf.streams.front();
      if (stream.state != InputUnit::PacketStream::State::kActive) continue;
      if (stream.sa_eligible > now) continue;
      if (!in.front_flit_ready(now, ivc)) continue;
      OutputUnit& out = *outputs_[static_cast<std::size_t>(stream.out_port)];
      if (!out.can_accept(stream.out_vc, in.front_flit(ivc).domain)) {
        ++stats_.sa_stalls_no_slot;
        continue;
      }
      if (out.credits(stream.out_vc) <= 0) {
        ++stats_.sa_stalls_no_credit;
        continue;
      }
      sa_vc_req_[static_cast<std::size_t>(ivc)] = true;
      any = true;
      ++stats_.sa_requests;
    }
    if (!any) continue;
    Arbiter& arb = *sa_input_arbiters_[static_cast<std::size_t>(ip)];
    const int w = arb.arbitrate(sa_vc_req_);
    if (w >= 0) {
      arb.update(w);
      sa_winner_vc_[static_cast<std::size_t>(ip)] = w;
    }
    std::fill(sa_vc_req_.begin(), sa_vc_req_.end(), false);
  }

  // Stage 2: each output port picks one winning input port.
  for (int op = 0; op < ports; ++op) {
    bool any = false;
    for (int ip = 0; ip < ports; ++ip) {
      const int ivc = sa_winner_vc_[static_cast<std::size_t>(ip)];
      if (ivc < 0) continue;
      const auto& stream =
          inputs_[static_cast<std::size_t>(ip)]->vcbuf(ivc).streams.front();
      if (stream.out_port == op) {
        sa_port_req_[static_cast<std::size_t>(ip)] = true;
        any = true;
      }
    }
    if (!any) continue;
    Arbiter& arb = *sa_output_arbiters_[static_cast<std::size_t>(op)];
    const int ip = arb.arbitrate(sa_port_req_);
    std::fill(sa_port_req_.begin(), sa_port_req_.end(), false);
    if (ip < 0) continue;
    arb.update(ip);

    // ST: move the flit through the crossbar into the retransmission buffer.
    const int ivc = sa_winner_vc_[static_cast<std::size_t>(ip)];
    sa_winner_vc_[static_cast<std::size_t>(ip)] = -1;  // one grant per input
    InputUnit& in = *inputs_[static_cast<std::size_t>(ip)];
    auto& stream = in.vcbuf(ivc).streams.front();
    const int out_vc = stream.out_vc;
    const bool phase_down = stream.phase_down_next;
    stream.sa_eligible = now + 1;

    Flit f = in.pop_front_flit(now, ivc);  // may retire the stream (tail)
    f.vc = static_cast<VcId>(out_vc);
    f.route_phase_down = phase_down;
    outputs_[static_cast<std::size_t>(op)]->accept(
        now, std::move(f),
        now + static_cast<Cycle>(cfg_.stage_sa + cfg_.stage_st));
    ++stats_.flits_switched;
  }
}

std::vector<PacketId> Router::active_packets_to(int out_port) const {
  std::vector<PacketId> ids;
  for (const auto& in : inputs_) {
    for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
      const auto& buf = in->vcbuf(vc);
      if (buf.streams.empty()) continue;
      const auto& s = buf.streams.front();
      if (s.state == InputUnit::PacketStream::State::kActive &&
          s.out_port == out_port) {
        ids.push_back(s.packet);
      }
    }
  }
  return ids;
}

void Router::invalidate_waiting_routes() {
  for (auto& in : inputs_) {
    for (int vc = 0; vc < cfg_.vcs_per_port; ++vc) {
      auto& buf = in->vcbuf(vc);
      for (auto& s : buf.streams) {
        if (s.state == InputUnit::PacketStream::State::kWaitVA) {
          s.state = InputUnit::PacketStream::State::kNeedRoute;
          s.out_port = -1;
        }
      }
    }
  }
}

int Router::input_occupancy() const {
  int n = 0;
  for (const auto& in : inputs_) n += in->occupancy();
  return n;
}

int Router::output_occupancy() const {
  int n = 0;
  for (const auto& out : outputs_) n += out->occupancy();
  return n;
}

bool Router::any_port_blocked(Cycle now) const {
  for (int p = 0; p < 4 && p < num_ports(); ++p) {
    if (outputs_[static_cast<std::size_t>(p)]->link() != nullptr &&
        outputs_[static_cast<std::size_t>(p)]->blocked(now)) {
      return true;
    }
  }
  return false;
}

}  // namespace htnoc
