// The 64-bit wire image of a flit — the bits a link (and therefore a link
// hardware trojan) actually sees. The field widths mirror Table I of the
// paper: src 4, dest 4, VC 2, memory address 32; the "full" target region is
// the low 42 bits. Every flit additionally carries its type in the top bits
// so receivers can delimit packets.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace htnoc::wire {

inline constexpr unsigned kSrcPos = 0, kSrcWidth = 4;
inline constexpr unsigned kDestPos = 4, kDestWidth = 4;
inline constexpr unsigned kVcPos = 8, kVcWidth = 2;
inline constexpr unsigned kMemPos = 10, kMemWidth = 32;
inline constexpr unsigned kLenPos = 42, kLenWidth = 4;
inline constexpr unsigned kClassPos = 46, kClassWidth = 2;
inline constexpr unsigned kThreadPos = 48, kThreadWidth = 6;
inline constexpr unsigned kPidPos = 54, kPidWidth = 8;
inline constexpr unsigned kTypePos = 62, kTypeWidth = 2;

/// Width of the paper's "full" deep-packet-inspection target region.
inline constexpr unsigned kFullTargetWidth = 42;  // src+dest+vc+mem

/// Header region used by L-Ob header-granularity obfuscation.
inline constexpr unsigned kHeaderBits = 42;

/// Fields recoverable from a head flit's wire image.
struct HeaderFields {
  RouterId src = 0;
  RouterId dest = 0;
  VcId vc = 0;
  std::uint32_t mem_addr = 0;
  unsigned length = 0;
  PacketClass pclass = PacketClass::kData;
  std::uint8_t thread = 0;  ///< Originating thread/process id (6 bits).
  std::uint64_t pid_low = 0;
  FlitType type = FlitType::kHead;
};

[[nodiscard]] constexpr std::uint64_t pack_header(const HeaderFields& h) noexcept {
  std::uint64_t w = 0;
  w = htnoc::deposit_bits(w, kSrcPos, kSrcWidth, h.src);
  w = htnoc::deposit_bits(w, kDestPos, kDestWidth, h.dest);
  w = htnoc::deposit_bits(w, kVcPos, kVcWidth, h.vc);
  w = htnoc::deposit_bits(w, kMemPos, kMemWidth, h.mem_addr);
  w = htnoc::deposit_bits(w, kLenPos, kLenWidth, h.length);
  w = htnoc::deposit_bits(w, kClassPos, kClassWidth,
                          static_cast<std::uint64_t>(h.pclass));
  w = htnoc::deposit_bits(w, kThreadPos, kThreadWidth, h.thread);
  w = htnoc::deposit_bits(w, kPidPos, kPidWidth, h.pid_low);
  w = htnoc::deposit_bits(w, kTypePos, kTypeWidth,
                          static_cast<std::uint64_t>(h.type));
  return w;
}

[[nodiscard]] constexpr HeaderFields unpack_header(std::uint64_t w) noexcept {
  HeaderFields h;
  h.src = static_cast<RouterId>(htnoc::extract_bits(w, kSrcPos, kSrcWidth));
  h.dest = static_cast<RouterId>(htnoc::extract_bits(w, kDestPos, kDestWidth));
  h.vc = static_cast<VcId>(htnoc::extract_bits(w, kVcPos, kVcWidth));
  h.mem_addr =
      static_cast<std::uint32_t>(htnoc::extract_bits(w, kMemPos, kMemWidth));
  h.length = static_cast<unsigned>(htnoc::extract_bits(w, kLenPos, kLenWidth));
  h.pclass =
      static_cast<PacketClass>(htnoc::extract_bits(w, kClassPos, kClassWidth));
  h.thread =
      static_cast<std::uint8_t>(htnoc::extract_bits(w, kThreadPos, kThreadWidth));
  h.pid_low = htnoc::extract_bits(w, kPidPos, kPidWidth);
  h.type = static_cast<FlitType>(htnoc::extract_bits(w, kTypePos, kTypeWidth));
  return h;
}

/// Stamp the flit-type bits onto an arbitrary (payload) wire word.
[[nodiscard]] constexpr std::uint64_t stamp_type(std::uint64_t w, FlitType t) noexcept {
  return htnoc::deposit_bits(w, kTypePos, kTypeWidth,
                             static_cast<std::uint64_t>(t));
}

[[nodiscard]] constexpr FlitType type_of(std::uint64_t w) noexcept {
  return static_cast<FlitType>(htnoc::extract_bits(w, kTypePos, kTypeWidth));
}

}  // namespace htnoc::wire
