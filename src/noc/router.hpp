// The 5-stage virtual-channel router (paper Sec. IV, Fig. 5):
//   BW/RC  buffer write + route computation   (InputUnit::process_arrivals + stage_rc)
//   VA     virtual-channel allocation          (stage_va, separable, round-robin)
//   SA     switch allocation                   (stage_sa_st, separable, round-robin)
//   ST     switch traversal into the output / retransmission buffer
//   LT     link traversal                      (OutputUnit::step_lt)
//
// Port numbering: 0..3 = N,S,E,W; 4..4+concentration-1 = local ports.
#pragma once

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "noc/arbiter.hpp"
#include "noc/input_unit.hpp"
#include "noc/output_unit.hpp"
#include "noc/routing.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc {

class Router {
 public:
  struct Stats {
    std::uint64_t flits_switched = 0;  ///< Flits moved through the crossbar.
    std::uint64_t rc_computations = 0;
    std::uint64_t rc_stalls_unroutable = 0;
    std::uint64_t va_grants = 0;
    std::uint64_t va_stalls_no_free_vc = 0;  ///< All output VCs of class held.
    std::uint64_t sa_requests = 0;           ///< Input-VC switch requests.
    std::uint64_t sa_stalls_no_slot = 0;     ///< Retransmission buffer full.
    std::uint64_t sa_stalls_no_credit = 0;   ///< Downstream buffer full.

    /// Crossbar demand that lost arbitration rather than resources.
    [[nodiscard]] std::uint64_t sa_arbitration_losses() const {
      return sa_requests - flits_switched;
    }
  };

  Router(const NocConfig& cfg, RouterId id, const RoutingFunction* routing,
         ArbiterKind arbiter_kind = ArbiterKind::kRoundRobin);

  [[nodiscard]] RouterId id() const noexcept { return id_; }
  [[nodiscard]] int num_ports() const noexcept {
    return static_cast<int>(inputs_.size());
  }

  [[nodiscard]] InputUnit& input(int port) {
    return *inputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] OutputUnit& output(int port) {
    return *outputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] const InputUnit& input(int port) const {
    return *inputs_[static_cast<std::size_t>(port)];
  }
  [[nodiscard]] const OutputUnit& output(int port) const {
    return *outputs_[static_cast<std::size_t>(port)];
  }

  /// Install the receiver-side threat detector on every input port.
  void set_detector(ThreatDetector* det);
  /// Install an L-Ob controller on one output port.
  void set_lob(int port, LObController* lob);
  /// Install the trace tap on every input and output unit.
  void set_trace(trace::Tap tap);
  /// Swap the routing function (Ariadne-style reconfiguration).
  void set_routing(const RoutingFunction* routing) { routing_ = routing; }

  /// Packets whose front stream is committed (kActive) to `out_port` on any
  /// input — these must be purged when that output's link is disabled.
  [[nodiscard]] std::vector<PacketId> active_packets_to(int out_port) const;

  /// Send every routed-but-unallocated (kWaitVA) stream back through route
  /// computation — called after a routing reconfiguration so stale
  /// decisions do not aim at disabled links.
  void invalidate_waiting_routes();

  /// Drain phase of the two-phase step: pop due reverse-channel messages
  /// and phit arrivals off every attached link into unit staging. Pure
  /// pops; safe to run concurrently with other routers'/NIs' drains (each
  /// deque has exactly one drainer — see Network::step).
  void drain(Cycle now);
  /// Compute phase: control, arrivals, RC, VA, SA/ST, LT over the staged
  /// messages. All link interactions are pushes (single writer).
  void compute(Cycle now);

  /// Advance one cycle: control, arrivals, RC, VA, SA/ST, LT (serial
  /// drain + compute).
  void step(Cycle now);

  /// Active-set check: false only when stepping would provably be a no-op —
  /// no buffered flits in any input VC or scramble station, no
  /// retransmission slots held, no phit in flight on any input link and no
  /// credit/ACK in flight on any output link. Stepping an idle router
  /// touches no state (arbiters advance only on grants), so skipping it is
  /// bit-exact. Streams holding an output VC with nothing buffered wake via
  /// their input link's in-flight phits.
  [[nodiscard]] bool has_work() const {
    for (const auto& in : inputs_) {
      if (in->occupancy() != 0) return true;
      const Link* l = in->link();
      if (l != nullptr && !l->idle()) return true;
    }
    for (const auto& out : outputs_) {
      if (out->occupancy() != 0) return true;
      const Link* l = out->link();
      if (l != nullptr && l->has_reverse_traffic()) return true;
    }
    return false;
  }

  // --- paper metrics ---

  /// Total flits buffered across all input ports.
  [[nodiscard]] int input_occupancy() const;
  /// Total flits held in output/retransmission buffers.
  [[nodiscard]] int output_occupancy() const;
  /// True when at least one inter-router output port is blocked (full
  /// retransmission buffer with no ACK progress).
  [[nodiscard]] bool any_port_blocked(Cycle now) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend struct htnoc::verify::StateCodec;

  void stage_rc(Cycle now);
  void stage_va(Cycle now);
  void stage_sa_st(Cycle now);
  void batched_bw(Cycle now);
  void batched_lt(Cycle now);

  [[nodiscard]] int va_arbiter_index(int out_port, int out_vc) const {
    return out_port * cfg_.vcs_per_port + out_vc;
  }
  [[nodiscard]] int requester_index(int in_port, int in_vc) const {
    return in_port * cfg_.vcs_per_port + in_vc;
  }

  const NocConfig& cfg_;
  RouterId id_;
  const RoutingFunction* routing_;

  std::vector<std::unique_ptr<InputUnit>> inputs_;
  std::vector<std::unique_ptr<OutputUnit>> outputs_;

  // VA: one arbiter per (out_port, out_vc) over all (in_port, in_vc).
  std::vector<std::unique_ptr<Arbiter>> va_arbiters_;
  // SA stage 1: one arbiter per input port over its VCs.
  std::vector<std::unique_ptr<Arbiter>> sa_input_arbiters_;
  // SA stage 2: one arbiter per output port over input ports.
  std::vector<std::unique_ptr<Arbiter>> sa_output_arbiters_;

  // --- persistent per-cycle scratch (docs/PERFORMANCE.md) ---
  // The allocator stages and the batched ECC lanes reuse these arenas every
  // cycle instead of re-allocating request bitmaps and lane buffers (the
  // pre-pool code built ~800 request vectors per 4x4-fabric cycle). All are
  // transient within one compute() call and never serialized.
  ecc::CodecDispatch codec_;             ///< Router-level batch codec.
  std::vector<Codeword72> lane_cw_;      ///< Gathered staged codewords.
  std::vector<ecc::DecodeResult> lane_res_;  ///< Batch-decoded results.
  std::vector<std::uint64_t> lane_words_;    ///< Planned LT words to encode.
  std::vector<int> lane_ports_;              ///< Output port per planned word.
  std::vector<std::vector<bool>> va_requests_;  ///< Per-arbiter bitmaps.
  std::vector<bool> va_any_;                    ///< Arbiters touched this cycle.
  std::vector<int> va_touched_;                 ///< Touched-arbiter list.
  std::vector<int> sa_winner_vc_;               ///< SA stage-1 winners.
  std::vector<bool> sa_vc_req_;                 ///< SA stage-1 request bitmap.
  std::vector<bool> sa_port_req_;               ///< SA stage-2 request bitmap.

  Stats stats_;
};

}  // namespace htnoc
