#include "noc/updown.hpp"

#include <deque>

#include "common/expect.hpp"

namespace htnoc {

namespace {
constexpr std::array<Direction, 4> kDirs = {Direction::kNorth, Direction::kSouth,
                                            Direction::kEast, Direction::kWest};
}  // namespace

UpDownRouting::UpDownRouting(const MeshGeometry& geom,
                             const std::set<LinkRef>& disabled_links)
    : geom_(geom) {
  const int n = geom_.num_routers();
  // Up*/down* legality is defined on an undirected graph: a physical link
  // with either direction failed is treated as fully failed (this is also
  // how Ariadne-class reconfiguration treats faulty links).
  enabled_.assign(static_cast<std::size_t>(n) * 4, false);
  for (RouterId r = 0; r < n; ++r) {
    for (Direction d : kDirs) {
      if (!geom_.has_neighbor(r, d)) continue;
      const RouterId nb = geom_.neighbor(r, d);
      const bool healthy = !disabled_links.contains({r, d}) &&
                           !disabled_links.contains({nb, opposite(d)});
      enabled_[static_cast<std::size_t>(link_index({r, d}))] = healthy;
    }
  }

  // BFS levels over the *undirected* healthy graph: a tree edge exists when
  // at least one direction survives (the tree only defines up/down labels;
  // traversal legality still checks the directed link).
  levels_.assign(static_cast<std::size_t>(n), kUnreachable);
  std::deque<RouterId> q;
  levels_[0] = 0;
  q.push_back(0);
  while (!q.empty()) {
    const RouterId r = q.front();
    q.pop_front();
    for (Direction d : kDirs) {
      if (!geom_.has_neighbor(r, d)) continue;
      const RouterId nb = geom_.neighbor(r, d);
      if (!enabled_[static_cast<std::size_t>(link_index({r, d}))]) continue;
      if (levels_[static_cast<std::size_t>(nb)] == kUnreachable) {
        levels_[static_cast<std::size_t>(nb)] =
            levels_[static_cast<std::size_t>(r)] + 1;
        q.push_back(nb);
      }
    }
  }
  for (int r = 0; r < n; ++r) {
    if (levels_[static_cast<std::size_t>(r)] == kUnreachable) {
      throw ContractViolation("up*/down*: router disconnected from root");
    }
  }

  // Per-destination backward BFS over the (router, phase) product graph.
  dist_.assign(static_cast<std::size_t>(n),
               std::vector<int>(static_cast<std::size_t>(n) * 2, kUnreachable));
  for (RouterId dest = 0; dest < n; ++dest) {
    auto& dd = dist_[static_cast<std::size_t>(dest)];
    std::deque<std::pair<RouterId, int>> bfs;
    dd[static_cast<std::size_t>(dest) * 2 + 0] = 0;
    dd[static_cast<std::size_t>(dest) * 2 + 1] = 0;
    bfs.emplace_back(dest, 0);
    bfs.emplace_back(dest, 1);
    while (!bfs.empty()) {
      const auto [v, pv] = bfs.front();
      bfs.pop_front();
      const int dv = dd[static_cast<std::size_t>(v) * 2 + static_cast<std::size_t>(pv)];
      // Find predecessors (u, pu) with a legal move u->v landing in phase pv.
      for (Direction d : kDirs) {
        if (!geom_.has_neighbor(v, opposite(d))) continue;
        const RouterId u = geom_.neighbor(v, opposite(d));
        // The move is u --d--> v; check the directed link is healthy.
        if (!enabled_[static_cast<std::size_t>(link_index({u, d}))]) continue;
        const bool up_hop = is_up(u, d);
        // Legal phases pu at u for this move and resulting phase at v:
        //  up hop:   requires pu == 0, lands pv' == 0
        //  down hop: any pu, lands pv' == 1
        if (up_hop) {
          if (pv != 0) continue;
          if (dd[static_cast<std::size_t>(u) * 2 + 0] > dv + 1) {
            dd[static_cast<std::size_t>(u) * 2 + 0] = dv + 1;
            bfs.emplace_back(u, 0);
          }
        } else {
          if (pv != 1) continue;
          for (int pu = 0; pu <= 1; ++pu) {
            if (dd[static_cast<std::size_t>(u) * 2 + static_cast<std::size_t>(pu)] >
                dv + 1) {
              dd[static_cast<std::size_t>(u) * 2 + static_cast<std::size_t>(pu)] =
                  dv + 1;
              bfs.emplace_back(u, pu);
            }
          }
        }
      }
    }
  }

  for (RouterId s = 0; s < n; ++s) {
    for (RouterId t = 0; t < n; ++t) {
      if (!reachable(s, t)) {
        throw ContractViolation("up*/down*: no legal route between some pair");
      }
    }
  }
}

bool UpDownRouting::is_up(RouterId from, Direction dir) const {
  const RouterId to = geom_.neighbor(from, dir);
  const int lf = levels_[static_cast<std::size_t>(from)];
  const int lt = levels_[static_cast<std::size_t>(to)];
  if (lt != lf) return lt < lf;
  return to < from;  // deterministic tie-break on equal levels
}

bool UpDownRouting::reachable(RouterId from, RouterId to) const {
  return dist(to, from, 0) < kUnreachable;
}

RouteDecision UpDownRouting::route(RouterId here, const Flit& f) const {
  if (f.dest_router == here) {
    return {kPortLocalBase + geom_.local_slot_of_core(f.dest_core),
            f.route_phase_down};
  }
  RouteDecision dec = route_with_phase(here, f.dest_router,
                                       f.route_phase_down ? 1 : 0);
  if (dec.out_port < 0 && f.route_phase_down) {
    // Epoch-reset recovery: the packet's phase bit was earned under an
    // older routing epoch whose links may since have been disabled. The
    // reconfiguration logically re-admits in-flight packets as fresh, so a
    // stranded down-phase packet restarts in the up phase.
    dec = route_with_phase(here, f.dest_router, 0);
  }
  return dec;
}

RouteDecision UpDownRouting::route_with_phase(RouterId here, RouterId dest,
                                              int phase) const {
  int best_port = -1;
  int best_dist = kUnreachable;
  bool best_phase_down = phase == 1;
  for (Direction d : kDirs) {
    if (!geom_.has_neighbor(here, d)) continue;
    if (!enabled_[static_cast<std::size_t>(link_index({here, d}))]) continue;
    const bool up_hop = is_up(here, d);
    if (phase == 1 && up_hop) continue;  // down-phase may not go up
    const RouterId nb = geom_.neighbor(here, d);
    const int nphase = up_hop ? 0 : 1;
    const int dd = dist(dest, nb, nphase);
    if (dd == kUnreachable) continue;
    if (dd + 1 < best_dist) {
      best_dist = dd + 1;
      best_port = direction_port(d);
      best_phase_down = (nphase == 1);
    }
  }
  return {best_port, best_phase_down};
}

}  // namespace htnoc
