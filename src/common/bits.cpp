#include "common/bits.hpp"

namespace htnoc {

std::string to_bit_string(const Codeword72& cw) {
  std::string s;
  s.reserve(Codeword72::kBits);
  for (unsigned bit = Codeword72::kBits; bit-- > 0;) {
    s.push_back(cw.get(bit) ? '1' : '0');
  }
  return s;
}

}  // namespace htnoc
