// Deterministic, splittable pseudo-random number generation.
//
// Simulations must be bit-reproducible across runs and platforms, so we do
// not use std::mt19937 distributions (whose std::uniform_* mappings are not
// specified portably). xoshiro256** supplies raw 64-bit draws and we build
// the distributions ourselves.
#pragma once

#include <array>
#include <cstdint>

#include "common/expect.hpp"

namespace htnoc {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 to fill the state; never all-zero.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Raw 64 uniformly random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    HTNOC_EXPECT(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      // 128-bit multiply-high.
      const auto wide = static_cast<unsigned __int128>(r) * bound;
      const auto lo = static_cast<std::uint64_t>(wide);
      if (lo >= threshold) return static_cast<std::uint64_t>(wide >> 64);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    HTNOC_EXPECT(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Derive an independent child stream; deterministic in (this state, salt).
  Rng split(std::uint64_t salt) noexcept {
    return Rng(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  /// Raw generator state, exposed for snapshot/restore: a stream restored
  /// with set_state(state()) continues the exact draw sequence.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace htnoc
