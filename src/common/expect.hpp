// Lightweight precondition / invariant checking in the spirit of the
// C++ Core Guidelines' Expects()/Ensures(). Violations throw so tests can
// assert on them; hot paths may use HTNOC_ASSUME in release builds.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace htnoc {

/// Thrown when a precondition or invariant stated with HTNOC_EXPECT fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::source_location loc) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          loc.file_name() + ":" + std::to_string(loc.line()) +
                          " in " + loc.function_name());
}
}  // namespace detail

}  // namespace htnoc

#define HTNOC_EXPECT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::htnoc::detail::contract_fail("precondition", #cond,                  \
                                     std::source_location::current());       \
  } while (false)

#define HTNOC_ENSURE(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::htnoc::detail::contract_fail("postcondition", #cond,                 \
                                     std::source_location::current());       \
  } while (false)

#define HTNOC_INVARIANT(cond)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::htnoc::detail::contract_fail("invariant", #cond,                     \
                                     std::source_location::current());       \
  } while (false)
