// Minimal leveled logger. Quiet by default so benches and tests stay clean;
// examples turn it up for narrative output.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace htnoc {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Process-wide log threshold (a deliberate, documented exception to the
/// no-globals rule: log level is configuration, not program state).
class Log {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel lvl) noexcept { level_ = lvl; }
  static bool enabled(LogLevel lvl) noexcept {
    return static_cast<int>(lvl) <= static_cast<int>(level_);
  }
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  if (Log::enabled(LogLevel::kError))
    Log::write(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (Log::enabled(LogLevel::kWarn))
    Log::write(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (Log::enabled(LogLevel::kInfo))
    Log::write(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  if (Log::enabled(LogLevel::kDebug))
    Log::write(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace htnoc
