#include "common/config.hpp"

#include "common/expect.hpp"

namespace htnoc {

void NocConfig::validate() const {
  HTNOC_EXPECT(mesh_width >= 2 && mesh_width <= 64);
  HTNOC_EXPECT(mesh_height >= 2 && mesh_height <= 64);
  HTNOC_EXPECT(concentration >= 1 && concentration <= 16);
  HTNOC_EXPECT(vcs_per_port >= 1 && vcs_per_port <= 16);
  HTNOC_EXPECT(buffer_depth >= 1 && buffer_depth <= 64);
  HTNOC_EXPECT(retrans_depth >= 1 && retrans_depth <= 64);
  HTNOC_EXPECT(retrans_per_vc_depth >= 1 && retrans_per_vc_depth <= 64);
  HTNOC_EXPECT(stage_bw_rc >= 1 && stage_va >= 1 && stage_sa >= 1 &&
               stage_st >= 1 && stage_lt >= 1);
  HTNOC_EXPECT(injection_queue_depth >= 1);
  HTNOC_EXPECT(step_threads >= 1 && step_threads <= 256);
  // TDM needs an even VC split between the two domains.
  if (tdm_enabled) HTNOC_EXPECT(vcs_per_port % 2 == 0);
  // The plain mesh is the one-core-per-router fabric; a concentrated mesh
  // is its own topology kind, so an accidental concentration carry-over
  // from the cmesh default is a config bug worth failing loudly on.
  if (topology == TopologyKind::kMesh) HTNOC_EXPECT(concentration == 1);
}

TopologyKind topology_kind_from_string(const std::string& s) {
  if (s == "cmesh") return TopologyKind::kConcentratedMesh;
  if (s == "mesh") return TopologyKind::kMesh;
  if (s == "torus") return TopologyKind::kTorus;
  throw ContractViolation("unknown topology kind: " + s);
}

std::string to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kConcentratedMesh: return "cmesh";
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

RetransmissionScheme retransmission_scheme_from_string(const std::string& s) {
  if (s == "output") return RetransmissionScheme::kOutputBuffer;
  if (s == "per_vc") return RetransmissionScheme::kPerVcBuffer;
  throw ContractViolation("unknown retransmission scheme: " + s);
}

std::string to_string(RetransmissionScheme s) {
  switch (s) {
    case RetransmissionScheme::kOutputBuffer: return "output";
    case RetransmissionScheme::kPerVcBuffer: return "per_vc";
  }
  return "?";
}

EccScheme ecc_scheme_from_string(const std::string& s) {
  if (s == "secded") return EccScheme::kSecded;
  if (s == "parity") return EccScheme::kParity;
  if (s == "none") return EccScheme::kNone;
  throw ContractViolation("unknown ecc scheme: " + s);
}

std::string to_string(EccScheme s) {
  switch (s) {
    case EccScheme::kSecded: return "secded";
    case EccScheme::kParity: return "parity";
    case EccScheme::kNone: return "none";
  }
  return "?";
}

}  // namespace htnoc
