#include "common/types.hpp"

namespace htnoc {

std::string to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kSouth: return "S";
    case Direction::kEast: return "E";
    case Direction::kWest: return "W";
    case Direction::kLocal: return "L";
  }
  return "?";
}

std::string to_string(FlitType t) {
  switch (t) {
    case FlitType::kHead: return "head";
    case FlitType::kBody: return "body";
    case FlitType::kTail: return "tail";
    case FlitType::kHeadTail: return "head_tail";
  }
  return "?";
}

}  // namespace htnoc
