#include "common/log.hpp"

namespace htnoc {

LogLevel Log::level_ = LogLevel::kWarn;

void Log::write(LogLevel lvl, const std::string& msg) {
  const char* tag = "";
  switch (lvl) {
    case LogLevel::kError: tag = "[error] "; break;
    case LogLevel::kWarn: tag = "[warn]  "; break;
    case LogLevel::kInfo: tag = "[info]  "; break;
    case LogLevel::kDebug: tag = "[debug] "; break;
    case LogLevel::kTrace: tag = "[trace] "; break;
  }
  std::cerr << tag << msg << '\n';
}

}  // namespace htnoc
