// Fundamental identifiers and enumerations shared by every htnoc module.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace htnoc {

/// Simulation time in router clock cycles (2 GHz nominal).
using Cycle = std::uint64_t;

/// Core (network-interface endpoint) identifier, 0..num_cores-1.
using NodeId = std::uint16_t;

/// Router identifier, 0..num_routers-1.
using RouterId = std::uint16_t;

/// Globally unique packet identifier assigned at injection.
using PacketId = std::uint64_t;

/// Virtual-channel index within a port.
using VcId = std::uint8_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr RouterId kInvalidRouter = std::numeric_limits<RouterId>::max();
inline constexpr PacketId kInvalidPacket = std::numeric_limits<PacketId>::max();

/// Flit position within its packet.
enum class FlitType : std::uint8_t {
  kHead,      ///< First flit; carries the routing/target header.
  kBody,      ///< Middle flit.
  kTail,      ///< Last flit; releases the VC.
  kHeadTail,  ///< Single-flit packet.
};

[[nodiscard]] constexpr bool is_head(FlitType t) noexcept {
  return t == FlitType::kHead || t == FlitType::kHeadTail;
}
[[nodiscard]] constexpr bool is_tail(FlitType t) noexcept {
  return t == FlitType::kTail || t == FlitType::kHeadTail;
}

/// Packet semantic class used by the request/reply traffic protocol.
enum class PacketClass : std::uint8_t {
  kRequest,
  kReply,
  kData,
};

/// TDM quality-of-service domain (SurfNoC-style two-domain evaluation).
enum class TdmDomain : std::uint8_t {
  kD1 = 0,
  kD2 = 1,
};

/// Mesh port directions. Local ports for the concentration follow.
enum class Direction : std::uint8_t {
  kNorth = 0,
  kSouth = 1,
  kEast = 2,
  kWest = 3,
  kLocal = 4,  ///< First local (core) port; concentrated meshes have several.
};

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    default: return Direction::kLocal;
  }
}

[[nodiscard]] std::string to_string(Direction d);
[[nodiscard]] std::string to_string(FlitType t);

}  // namespace htnoc
