#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace htnoc::json {

std::string Value::type_name() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(msg, line, col);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c, const char* what) {
    if (eof() || text_[pos_] != c) fail(std::string("expected ") + what);
    ++pos_;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{', "'{'");
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [k, v] : obj) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "':'");
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[', "'['");
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (take() != '\\' || take() != 'u') {
              fail("unpaired surrogate in \\u escape");
            }
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string lexeme(text_.substr(start, pos_ - start));
    return Value(std::strtod(lexeme.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Type::kNumber: out += format_double(v.as_number()); break;
    case Value::Type::kString: write_escaped(out, v.as_string()); break;
    case Value::Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        write_value(out, a[i], indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) out.push_back(',');
        if (pretty) newline_pad(depth + 1);
        write_escaped(out, o[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, o[i].second, indent, depth + 1);
      }
      if (pretty) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

void write(std::string& out, const Value& v, int indent) {
  write_value(out, v, indent, 0);
}

std::string to_string(const Value& v, int indent) {
  std::string out;
  write(out, v, indent);
  return out;
}

std::string format_double(double v) {
  char buf[40];
  if (v == 0.0) return "0";  // also normalizes -0
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the codecs never emit them, but be safe.
    return v > 0 ? "1e999" : "-1e999";
  }
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {  // 2^53
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

std::uint64_t as_uint64(const Value& v) {
  if (v.is_number()) {
    const double d = v.as_number();
    if (d < 0 || d != std::floor(d) || d >= 9007199254740992.0) {
      throw TypeError("expected unsigned integer, got " + format_double(d));
    }
    return static_cast<std::uint64_t>(d);
  }
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s.empty()) throw TypeError("expected unsigned integer, got \"\"");
    char* end = nullptr;
    const unsigned long long x = std::strtoull(s.c_str(), &end, 0);
    if (end == nullptr || *end != '\0' || s.front() == '-') {
      throw TypeError("expected unsigned integer, got \"" + s + "\"");
    }
    return static_cast<std::uint64_t>(x);
  }
  throw TypeError("expected unsigned integer, got " + v.type_name());
}

}  // namespace htnoc::json
