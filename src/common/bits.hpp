// Bit-manipulation helpers and the 72-bit link codeword used on every wire.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "common/expect.hpp"

namespace htnoc {

/// Extract `width` bits of `value` starting at bit `pos` (LSB = 0).
[[nodiscard]] constexpr std::uint64_t extract_bits(std::uint64_t value, unsigned pos,
                                                   unsigned width) noexcept {
  if (width >= 64) return value >> pos;
  return (value >> pos) & ((std::uint64_t{1} << width) - 1);
}

/// Replace `width` bits of `value` starting at `pos` with `field`.
[[nodiscard]] constexpr std::uint64_t deposit_bits(std::uint64_t value, unsigned pos,
                                                   unsigned width,
                                                   std::uint64_t field) noexcept {
  const std::uint64_t mask =
      (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (value & ~(mask << pos)) | ((field & mask) << pos);
}

/// A 72-bit SECDED codeword as carried on a link: 64 data + 8 check bits.
/// Bit 0..63 live in `lo`; bit 64..71 live in the low byte of `hi`.
struct Codeword72 {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;

  static constexpr unsigned kBits = 72;

  [[nodiscard]] constexpr bool get(unsigned bit) const noexcept {
    return bit < 64 ? ((lo >> bit) & 1) != 0 : ((hi >> (bit - 64)) & 1) != 0;
  }

  constexpr void set(unsigned bit, bool v) noexcept {
    if (bit < 64) {
      lo = v ? (lo | (std::uint64_t{1} << bit)) : (lo & ~(std::uint64_t{1} << bit));
    } else {
      const auto m = static_cast<std::uint8_t>(1u << (bit - 64));
      hi = v ? static_cast<std::uint8_t>(hi | m) : static_cast<std::uint8_t>(hi & ~m);
    }
  }

  constexpr void flip(unsigned bit) noexcept {
    if (bit < 64) {
      lo ^= (std::uint64_t{1} << bit);
    } else {
      hi = static_cast<std::uint8_t>(hi ^ (1u << (bit - 64)));
    }
  }

  [[nodiscard]] constexpr int popcount() const noexcept {
    return std::popcount(lo) + std::popcount(static_cast<unsigned>(hi));
  }

  [[nodiscard]] constexpr bool operator==(const Codeword72&) const noexcept = default;

  /// Hamming distance to another codeword (number of differing wires).
  [[nodiscard]] constexpr int distance(const Codeword72& o) const noexcept {
    return std::popcount(lo ^ o.lo) +
           std::popcount(static_cast<unsigned>(hi ^ o.hi));
  }
};

/// Render as 72-character binary string, MSB (bit 71) first. For diagnostics.
[[nodiscard]] std::string to_bit_string(const Codeword72& cw);

/// Parity (XOR-reduction) of a 64-bit word.
[[nodiscard]] constexpr bool parity64(std::uint64_t x) noexcept {
  return (std::popcount(x) & 1) != 0;
}

}  // namespace htnoc
