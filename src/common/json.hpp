// Minimal dependency-free JSON: an insertion-ordered value type, a strict
// recursive-descent parser with line/column-tagged errors, and a
// deterministic serializer.
//
// This is the single JSON substrate shared by the spec codecs
// (src/sweep/spec_json, src/verify/campaign_json) and the simulation
// server (src/server) — the CLI `--spec` path and the daemon's HTTP job
// submission parse through exactly the same code, so they cannot drift.
//
// Deliberate strictness (specs are configuration, not documents):
//   * duplicate object keys are a parse error;
//   * trailing non-whitespace after the top-level value is a parse error;
//   * objects preserve insertion order, so serialize(parse(x)) is
//     deterministic and serialize(parse(serialize(v))) == serialize(v).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htnoc::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object. Lookup is linear — spec documents are tiny.
using Object = std::vector<std::pair<std::string, Value>>;

/// Parse failure, carrying 1-based line/column of the offending character.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line, int column)
      : std::runtime_error(msg + " at line " + std::to_string(line) +
                           " column " + std::to_string(column)),
        line_(line),
        column_(column) {}
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Wrong-type / missing-field access on a parsed Value.
class TypeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(runtime/explicit)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(int i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  Value(std::string s)  // NOLINT(runtime/explicit)
      : type_(Type::kString), str_(std::move(s)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const {
    require(Type::kBool, "bool");
    return bool_;
  }
  [[nodiscard]] double as_number() const {
    require(Type::kNumber, "number");
    return num_;
  }
  [[nodiscard]] const std::string& as_string() const {
    require(Type::kString, "string");
    return str_;
  }
  [[nodiscard]] const Array& as_array() const {
    require(Type::kArray, "array");
    return arr_;
  }
  [[nodiscard]] const Object& as_object() const {
    require(Type::kObject, "object");
    return obj_;
  }
  [[nodiscard]] Array& as_array() {
    require(Type::kArray, "array");
    return arr_;
  }
  [[nodiscard]] Object& as_object() {
    require(Type::kObject, "object");
    return obj_;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Append a member (no duplicate check; parse() already rejects dups).
  void set(std::string key, Value v) {
    require(Type::kObject, "object");
    obj_.emplace_back(std::move(key), std::move(v));
  }

  [[nodiscard]] std::string type_name() const;

 private:
  void require(Type t, const char* what) const {
    if (type_ != t) {
      throw TypeError(std::string("expected ") + what + ", got " +
                      type_name());
    }
  }

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Strict parse of one complete JSON document. Throws ParseError.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize deterministically. indent < 0: compact one-line form (the
/// canonical encoding the fixed-point and byte-compare tests rely on);
/// indent >= 0: pretty-printed with that many spaces per level.
void write(std::string& out, const Value& v, int indent = -1);
[[nodiscard]] std::string to_string(const Value& v, int indent = -1);

/// Shortest exact decimal form of a double (integral values print as plain
/// integers; everything else takes the lowest %.g precision that
/// round-trips). Exposed because the sweep emitters use the same contract.
[[nodiscard]] std::string format_double(double v);

/// uint64 values can exceed JSON's exactly-representable integer range, so
/// the codecs serialize them as decimal/hex strings; this accepts either a
/// JSON number (exact only below 2^53) or a string ("123", "0x7b").
[[nodiscard]] std::uint64_t as_uint64(const Value& v);

}  // namespace htnoc::json
