// Byte-oriented binary serialization primitives for the snapshot codec
// (src/verify/snapshot.cpp).
//
// Explicit little-endian byte order — blobs are portable across hosts —
// and a bounds-checked reader that throws on truncation instead of reading
// past the end, so a clipped blob is always a clean error, never UB. No
// varints, no tags: the snapshot layout is versioned as a whole (envelope
// version + integrity digest), and every field is fixed-width.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace htnoc::serial {

/// Reader ran out of bytes — the blob is truncated or the layout diverged.
class Truncated : public std::runtime_error {
 public:
  Truncated() : std::runtime_error("serialized blob truncated") {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > size_ - pos_) throw Truncated();
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }

 private:
  std::uint64_t le(int n) {
    if (static_cast<std::size_t>(n) > size_ - pos_) throw Truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace htnoc::serial
