// Central simulation configuration. One aggregate, validated once, passed
// by const reference everywhere (no mutable globals — C++ Core Guidelines I.2).
#pragma once

#include <cstdint>
#include <string>

namespace htnoc {

/// Where retransmission buffers sit in the router (Fig. 5 of the paper).
enum class RetransmissionScheme : std::uint8_t {
  kOutputBuffer,  ///< Shared pool after the crossbar (paper's worst case).
  kPerVcBuffer,   ///< Dedicated slots per VC.
};

/// Fabric family (see src/topology). The paper's platform is the 4x4
/// concentrated mesh; the generic mesh and torus open the large-scale
/// regimes the refined-DoS literature targets. The topology decides the
/// link graph and the default dimension-order routing function; everything
/// downstream (routers, links, NIs, auditing, tracing) is
/// topology-agnostic.
enum class TopologyKind : std::uint8_t {
  kConcentratedMesh,  ///< width x height routers, `concentration` cores each.
  kMesh,              ///< Plain k x k mesh, one core per router.
  kTorus,             ///< Mesh with wrap-around links and ring-aware routing.
};

/// Link error-control scheme. The paper evaluates SECDED ("one fault can be
/// corrected, and the second triggers retransmission") and assumes the
/// attacker knows which code guards the link; the alternatives let the
/// repo study that assumption (a 2-bit TASP payload sails silently through
/// parity-only links, while a single-bit payload already DoSes them).
enum class EccScheme : std::uint8_t {
  kSecded,  ///< Hamming(72,64): correct 1, detect 2 (the paper's platform).
  kParity,  ///< Single parity bit: detect odd-weight errors, correct none.
  kNone,    ///< Raw wires: every fault is silent data corruption.
};

/// Parameters of the simulated NoC. Defaults reproduce the paper's setup:
/// 64-core, 16-router 4x4 mesh, concentration 4, 4 VCs/port, 4x64-bit
/// buffer slots per VC, 5-stage pipeline, x-y routing, round-robin
/// arbitration, 2 GHz.
struct NocConfig {
  /// Fabric family; defaults to the paper's concentrated mesh.
  TopologyKind topology = TopologyKind::kConcentratedMesh;
  int mesh_width = 4;
  int mesh_height = 4;
  int concentration = 4;

  int vcs_per_port = 4;
  int buffer_depth = 4;    ///< Flit slots per VC.

  /// Where retransmission buffers live (paper Fig. 5 shows both schemes).
  /// kOutputBuffer — a shared pool after the crossbar (the paper's
  /// evaluated worst case: one wedged flit can exhaust the whole port);
  /// kPerVcBuffer — dedicated slots per VC (a wedge is confined to its VC
  /// at a higher buffer cost).
  RetransmissionScheme retrans_scheme = RetransmissionScheme::kOutputBuffer;
  int retrans_depth = 4;        ///< Shared-pool slots (kOutputBuffer).
  int retrans_per_vc_depth = 2; ///< Slots per VC (kPerVcBuffer).

  /// Link error-control code (paper platform: SECDED).
  EccScheme ecc_scheme = EccScheme::kSecded;

  /// Pipeline latencies in cycles for BW/RC, VA, SA, ST, LT (5-stage).
  int stage_bw_rc = 1;
  int stage_va = 1;
  int stage_sa = 1;
  int stage_st = 1;
  int stage_lt = 1;

  int injection_queue_depth = 8;  ///< NI source-queue slots per core.

  bool tdm_enabled = false;  ///< Two-domain TDM QoS (Fig. 12a).

  /// Skip stepping routers/NIs with provably no work this cycle (see
  /// Router::has_work). Bit-exact with full stepping; off forces the
  /// everything-every-cycle loop (benchmark baseline / debugging).
  bool active_step = true;

  /// Worker threads for the intra-run parallel step (see Network::step and
  /// docs/SCALING.md). 1 = serial. Results, traces and stats are
  /// bit-identical for any value: each cycle runs as a drain phase and a
  /// compute phase over contiguous router/NI shards, with all cross-shard
  /// effects staged and merged in fixed unit order at the phase barrier.
  /// Clamped to the router count at runtime.
  int step_threads = 1;

  std::uint64_t seed = 0xC0FFEE;

  [[nodiscard]] int num_routers() const noexcept { return mesh_width * mesh_height; }
  [[nodiscard]] int num_cores() const noexcept {
    return num_routers() * concentration;
  }
  [[nodiscard]] int ports_per_router() const noexcept {
    return 4 + concentration;  // N,S,E,W + local ports
  }
  [[nodiscard]] int pipeline_depth() const noexcept {
    return stage_bw_rc + stage_va + stage_sa + stage_st + stage_lt;
  }

  /// Throws ContractViolation when any parameter is out of range.
  void validate() const;
};

TopologyKind topology_kind_from_string(const std::string& s);
std::string to_string(TopologyKind k);
RetransmissionScheme retransmission_scheme_from_string(const std::string& s);
std::string to_string(RetransmissionScheme s);
EccScheme ecc_scheme_from_string(const std::string& s);
std::string to_string(EccScheme s);

}  // namespace htnoc
