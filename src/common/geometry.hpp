// 2-D mesh coordinate helpers for the concentrated-mesh topology.
#pragma once

#include <cstdlib>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace htnoc {

/// Router coordinates in a width x height mesh; router id = y*width + x.
struct MeshCoord {
  int x = 0;
  int y = 0;

  [[nodiscard]] constexpr bool operator==(const MeshCoord&) const noexcept = default;
};

/// Static geometry of a concentrated 2-D mesh.
class MeshGeometry {
 public:
  MeshGeometry(int width, int height, int concentration)
      : width_(width), height_(height), concentration_(concentration) {
    HTNOC_EXPECT(width > 0 && height > 0 && concentration > 0);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int concentration() const noexcept { return concentration_; }
  [[nodiscard]] int num_routers() const noexcept { return width_ * height_; }
  [[nodiscard]] int num_cores() const noexcept {
    return num_routers() * concentration_;
  }

  [[nodiscard]] MeshCoord coord_of(RouterId r) const {
    HTNOC_EXPECT(r < num_routers());
    return MeshCoord{static_cast<int>(r) % width_, static_cast<int>(r) / width_};
  }

  [[nodiscard]] RouterId router_at(MeshCoord c) const {
    HTNOC_EXPECT(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return static_cast<RouterId>(c.y * width_ + c.x);
  }

  /// Router serving a given core under block concentration.
  [[nodiscard]] RouterId router_of_core(NodeId core) const {
    HTNOC_EXPECT(core < num_cores());
    return static_cast<RouterId>(core / concentration_);
  }

  /// Index of the core within its router's local ports.
  [[nodiscard]] int local_slot_of_core(NodeId core) const {
    HTNOC_EXPECT(core < num_cores());
    return static_cast<int>(core) % concentration_;
  }

  [[nodiscard]] NodeId core_at(RouterId r, int slot) const {
    HTNOC_EXPECT(r < num_routers() && slot >= 0 && slot < concentration_);
    return static_cast<NodeId>(static_cast<int>(r) * concentration_ + slot);
  }

  /// True when router r has a neighbour in direction d.
  [[nodiscard]] bool has_neighbor(RouterId r, Direction d) const {
    const MeshCoord c = coord_of(r);
    switch (d) {
      case Direction::kNorth: return c.y > 0;
      case Direction::kSouth: return c.y < height_ - 1;
      case Direction::kEast: return c.x < width_ - 1;
      case Direction::kWest: return c.x > 0;
      default: return false;
    }
  }

  [[nodiscard]] RouterId neighbor(RouterId r, Direction d) const {
    HTNOC_EXPECT(has_neighbor(r, d));
    MeshCoord c = coord_of(r);
    switch (d) {
      case Direction::kNorth: --c.y; break;
      case Direction::kSouth: ++c.y; break;
      case Direction::kEast: ++c.x; break;
      case Direction::kWest: --c.x; break;
      default: break;
    }
    return router_at(c);
  }

  /// Manhattan hop distance between two routers.
  [[nodiscard]] int hop_distance(RouterId a, RouterId b) const {
    const MeshCoord ca = coord_of(a);
    const MeshCoord cb = coord_of(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

 private:
  int width_;
  int height_;
  int concentration_;
};

}  // namespace htnoc
