// 2-D grid coordinate helpers shared by every grid topology (mesh,
// concentrated mesh, torus). The `wrap` flag turns the grid into a torus:
// edge routers gain neighbours on the opposite edge and hop distances are
// measured around the shorter side of each ring.
#pragma once

#include <algorithm>
#include <cstdlib>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace htnoc {

/// Router coordinates in a width x height mesh; router id = y*width + x.
struct MeshCoord {
  int x = 0;
  int y = 0;

  [[nodiscard]] constexpr bool operator==(const MeshCoord&) const noexcept = default;
};

/// Static geometry of a (concentrated) 2-D grid, optionally wrapped.
class MeshGeometry {
 public:
  MeshGeometry(int width, int height, int concentration, bool wrap = false)
      : width_(width), height_(height), concentration_(concentration),
        wrap_(wrap) {
    HTNOC_EXPECT(width > 0 && height > 0 && concentration > 0);
    // A wrapped 1-wide ring would make a router its own neighbour.
    HTNOC_EXPECT(!wrap || (width >= 2 && height >= 2));
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int concentration() const noexcept { return concentration_; }
  [[nodiscard]] bool wraps() const noexcept { return wrap_; }
  [[nodiscard]] int num_routers() const noexcept { return width_ * height_; }
  [[nodiscard]] int num_cores() const noexcept {
    return num_routers() * concentration_;
  }

  [[nodiscard]] MeshCoord coord_of(RouterId r) const {
    HTNOC_EXPECT(r < num_routers());
    return MeshCoord{static_cast<int>(r) % width_, static_cast<int>(r) / width_};
  }

  [[nodiscard]] RouterId router_at(MeshCoord c) const {
    HTNOC_EXPECT(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return static_cast<RouterId>(c.y * width_ + c.x);
  }

  /// Router serving a given core under block concentration.
  [[nodiscard]] RouterId router_of_core(NodeId core) const {
    HTNOC_EXPECT(core < num_cores());
    return static_cast<RouterId>(core / concentration_);
  }

  /// Index of the core within its router's local ports.
  [[nodiscard]] int local_slot_of_core(NodeId core) const {
    HTNOC_EXPECT(core < num_cores());
    return static_cast<int>(core) % concentration_;
  }

  [[nodiscard]] NodeId core_at(RouterId r, int slot) const {
    HTNOC_EXPECT(r < num_routers() && slot >= 0 && slot < concentration_);
    return static_cast<NodeId>(static_cast<int>(r) * concentration_ + slot);
  }

  /// True when router r has a neighbour in direction d. On a wrapped grid
  /// every router has all four mesh neighbours.
  [[nodiscard]] bool has_neighbor(RouterId r, Direction d) const {
    const MeshCoord c = coord_of(r);
    switch (d) {
      case Direction::kNorth: return wrap_ || c.y > 0;
      case Direction::kSouth: return wrap_ || c.y < height_ - 1;
      case Direction::kEast: return wrap_ || c.x < width_ - 1;
      case Direction::kWest: return wrap_ || c.x > 0;
      default: return false;
    }
  }

  [[nodiscard]] RouterId neighbor(RouterId r, Direction d) const {
    HTNOC_EXPECT(has_neighbor(r, d));
    MeshCoord c = coord_of(r);
    switch (d) {
      case Direction::kNorth: c.y = c.y > 0 ? c.y - 1 : height_ - 1; break;
      case Direction::kSouth: c.y = c.y < height_ - 1 ? c.y + 1 : 0; break;
      case Direction::kEast: c.x = c.x < width_ - 1 ? c.x + 1 : 0; break;
      case Direction::kWest: c.x = c.x > 0 ? c.x - 1 : width_ - 1; break;
      default: break;
    }
    return router_at(c);
  }

  /// Minimal hop distance between two routers: Manhattan on a mesh, the
  /// shorter way around each ring on a torus.
  [[nodiscard]] int hop_distance(RouterId a, RouterId b) const {
    const MeshCoord ca = coord_of(a);
    const MeshCoord cb = coord_of(b);
    int dx = std::abs(ca.x - cb.x);
    int dy = std::abs(ca.y - cb.y);
    if (wrap_) {
      dx = std::min(dx, width_ - dx);
      dy = std::min(dy, height_ - dy);
    }
    return dx + dy;
  }

 private:
  int width_;
  int height_;
  int concentration_;
  bool wrap_;
};

}  // namespace htnoc
