#include "sim/simulator.hpp"

#include "common/expect.hpp"

namespace htnoc::sim {

std::string to_string(MitigationMode m) {
  switch (m) {
    case MitigationMode::kNone: return "none";
    case MitigationMode::kLOb: return "lob";
    case MitigationMode::kReroute: return "reroute";
  }
  return "?";
}

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) {
  if (trace::kCompiledIn && cfg_.trace.enabled) {
    trace_sink_ = std::make_unique<trace::TraceSink>(cfg_.trace);
  }
  const trace::Tap tap(trace_sink_.get());

  net_ = std::make_unique<Network>(cfg_.noc);
  if (trace_sink_) net_->set_trace(trace_sink_.get());
  if (cfg_.audit.enabled) {
    auditor_ =
        std::make_unique<verify::NetworkInvariantAuditor>(*net_, cfg_.audit);
    auditor_->set_trace_sink(trace_sink_.get());
    net_->set_audit(auditor_.get());
  }
  const MeshGeometry& geom = net_->geometry();

  // Background transient faults.
  if (cfg_.transient_phit_fault_prob > 0.0) {
    std::uint64_t salt = 0;
    for (const LinkRef& l : net_->all_links()) {
      TransientFaultInjector::Params tp;
      tp.phit_fault_prob = cfg_.transient_phit_fault_prob;
      net_->link(l.from, l.dir)
          .attach_injector(std::make_shared<TransientFaultInjector>(
              tp, cfg_.seed ^ (0x7ea5'0000 + salt++)));
    }
  }

  // Permanent stuck-at faults.
  for (const auto& [l, stuck] : cfg_.permanent_faults) {
    net_->link(l.from, l.dir)
        .attach_injector(std::make_shared<PermanentFaultInjector>(stuck));
  }

  // Trojan implants (kill switches start off; the schedule enables them).
  for (const AttackSpec& a : cfg_.attacks) {
    auto t = std::make_shared<trojan::Tasp>(a.tasp);
    t->set_trace(tap, a.link.from,
                 static_cast<std::int8_t>(direction_port(a.link.dir)));
    net_->link(a.link.from, a.link.dir).attach_injector(t);
    trojans_.push_back(std::move(t));
  }

  // Mitigation wiring.
  if (cfg_.mode != MitigationMode::kNone) {
    detectors_.resize(static_cast<std::size_t>(geom.num_routers()));
    for (RouterId r = 0; r < geom.num_routers(); ++r) {
      auto det =
          std::make_unique<mitigation::RouterThreatDetector>(cfg_.detector);
      det->set_trace(tap, static_cast<std::uint16_t>(r));
      // Give the detector each inter-router input port's link for BIST.
      for (int port = 0; port < 4; ++port) {
        const Direction d = port_direction(port);
        // Input port `d` of r is fed by the neighbour's link toward r.
        if (!geom.has_neighbor(r, d)) continue;
        const RouterId nb = geom.neighbor(r, d);
        if (net_->has_link(nb, opposite(d))) {
          det->set_port_link(port, &net_->link(nb, opposite(d)));
        }
      }
      if (cfg_.mode == MitigationMode::kReroute) {
        det->set_classification_callback(
            [this, r](int port, mitigation::LinkThreatClass cls) {
              (void)cls;
              pending_reroutes_.push_back(
                  {r, port, net_->now() + cfg_.reroute_latency});
            });
      }
      net_->set_detector(r, det.get());
      detectors_[static_cast<std::size_t>(r)] = std::move(det);
    }
  }
  if (cfg_.mode == MitigationMode::kLOb) {
    for (RouterId r = 0; r < geom.num_routers(); ++r) {
      for (int port = 0; port < 4; ++port) {
        if (!geom.has_neighbor(r, port_direction(port))) continue;
        auto lob = std::make_unique<mitigation::LObController>(cfg_.lob);
        lob->set_trace(tap, static_cast<std::uint16_t>(r),
                       static_cast<std::int8_t>(port));
        net_->set_lob(r, port, lob.get());
        lobs_[{r, port}] = std::move(lob);
      }
    }
  }
}

LinkRef Simulator::link_feeding(RouterId receiver, int in_port) const {
  HTNOC_EXPECT(in_port >= 0 && in_port < 4);
  const Direction d = port_direction(in_port);
  const MeshGeometry& geom = net_->geometry();
  HTNOC_EXPECT(geom.has_neighbor(receiver, d));
  return LinkRef{geom.neighbor(receiver, d), opposite(d)};
}

void Simulator::apply_kill_switch_schedule() {
  const Cycle now = net_->now();
  for (std::size_t i = 0; i < cfg_.attacks.size(); ++i) {
    if (now == cfg_.attacks[i].enable_killsw_at) {
      trojans_[i]->set_kill_switch(true);
    }
  }
}

void Simulator::process_reroute_events() {
  if (pending_reroutes_.empty()) return;
  const Cycle now = net_->now();
  std::vector<PendingReroute> mature;
  std::vector<PendingReroute> waiting;
  for (const PendingReroute& pr : pending_reroutes_) {
    (pr.ready_at <= now ? mature : waiting).push_back(pr);
  }
  pending_reroutes_ = std::move(waiting);
  if (mature.empty()) return;

  bool reconfigured = false;
  for (const auto& [receiver, port, ready_at] : mature) {
    (void)ready_at;
    const LinkRef fwd = link_feeding(receiver, port);
    // A flagged link is taken out of service in both directions, as a
    // physical-link failure would be (and as up*/down* reconfiguration
    // requires) — unless its loss would disconnect the mesh, in which case
    // rerouting is simply not an available mitigation for it and the link
    // stays in (degraded) service.
    if (net_->would_disconnect(fwd)) {
      ++stats_.reroutes_refused_disconnect;
      if (trace_sink_ != nullptr &&
          trace_sink_->wants(trace::Category::kReroute)) {
        trace::Event e = trace::make_event(
            trace::EventType::kRerouteRefused, now, trace::Scope::kLink,
            static_cast<std::uint16_t>(fwd.from),
            static_cast<std::int8_t>(direction_port(fwd.dir)));
        trace_sink_->record(e);
      }
      continue;
    }
    const LinkRef rev{receiver, opposite(fwd.dir)};
    for (const LinkRef& l : {fwd, rev}) {
      if (net_->disabled_links().contains(l)) continue;
      net_->disable_link(l);
      ++stats_.links_disabled;

      // Every packet with a flit parked in the dead output's retransmission
      // buffer, or committed to it from an input VC, is stranded: purge it
      // network-wide and hand it back to the traffic layer for end-to-end
      // re-injection.
      Router& from = net_->router(l.from);
      const int out_port = direction_port(l.dir);
      std::vector<PacketId> victims = from.output(out_port).packets_in_slots();
      for (const PacketId p : from.active_packets_to(out_port)) {
        victims.push_back(p);
      }
      std::set<PacketId> unique(victims.begin(), victims.end());
      for (const PacketId victim : unique) {
        if (!net_->packet_in_flight(victim)) continue;  // already purged
        for (const PacketId dropped : net_->purge_packet(victim)) {
          ++stats_.packets_purged;
          if (on_drop_) on_drop_(dropped);
        }
      }
      reconfigured = true;
    }
  }
  // Purge accounting: the network deduplicates flits per purged packet, so
  // its totals are the exact flit count (not the per-packet approximation
  // this counter used to hold).
  stats_.flits_purged_total = net_->purge_totals().flits;

  if (reconfigured) {
    // Stale routed-but-unallocated decisions must not aim at dead links.
    for (RouterId r = 0; r < net_->geometry().num_routers(); ++r) {
      net_->router(r).invalidate_waiting_routes();
    }
    net_->use_updown_routing();
    ++stats_.routing_reconfigurations;
    if (trace_sink_ != nullptr &&
        trace_sink_->wants(trace::Category::kReroute)) {
      trace::Event e = trace::make_event(trace::EventType::kRoutingReconfigured,
                                         now, trace::Scope::kNetwork, 0);
      e.arg = static_cast<std::uint64_t>(stats_.links_disabled);
      trace_sink_->record(e);
    }
  }
}

void Simulator::step() {
  apply_kill_switch_schedule();
  if (cfg_.mode == MitigationMode::kReroute) process_reroute_events();
  net_->step();
  if (auditor_) auditor_->on_cycle_end();
}

}  // namespace htnoc::sim
