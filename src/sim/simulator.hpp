// The experiment harness: wires a Network together with trojans, fault
// injectors, per-router threat detectors, per-port L-Ob controllers and a
// mitigation policy, and drives the whole thing cycle by cycle.
//
// Policies (paper Sec. V-B):
//   kNone    — plain retransmission forever (Fig. 11a, "no mitigation");
//   kLOb     — threat detector + s2s L-Ob obfuscation (Fig. 12b);
//   kReroute — threat detector classifies, then the link is disabled,
//              stranded packets are purged/re-injected and routing is
//              reconfigured with up*/down* (the Ariadne baseline, Fig. 10).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mitigation/lob.hpp"
#include "mitigation/threat_detector.hpp"
#include "noc/network.hpp"
#include "trace/sink.hpp"
#include "trojan/tasp.hpp"
#include "verify/auditor.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::sim {

enum class MitigationMode : std::uint8_t { kNone, kLOb, kReroute };

std::string to_string(MitigationMode m);

/// One trojan implant: which link, tuned how, enabled when.
struct AttackSpec {
  LinkRef link;
  trojan::TaspParams tasp;
  Cycle enable_killsw_at = 0;  ///< Cycle the external kill switch turns on.
};

struct SimConfig {
  NocConfig noc;
  MitigationMode mode = MitigationMode::kNone;
  std::vector<AttackSpec> attacks;
  /// Optional background transient faults on every mesh link.
  double transient_phit_fault_prob = 0.0;
  /// Permanent stuck-at faults: link -> {wire -> stuck value}.
  std::vector<std::pair<LinkRef, std::map<unsigned, bool>>> permanent_faults;
  mitigation::ThreatDetectorParams detector;
  mitigation::LObParams lob;
  /// Cycles between a link's classification and the completed disable +
  /// up*/down* reconfiguration. Ariadne's distributed reconfiguration costs
  /// hundreds to thousands of cycles on a 16-64 node NoC; the attack keeps
  /// wedging the network meanwhile.
  Cycle reroute_latency = 300;
  std::uint64_t seed = 0xABCD;
  /// Event-trace capture (off by default; see src/trace). When enabled and
  /// tracing is compiled in, the simulator owns a TraceSink and threads taps
  /// through every instrumented component.
  trace::TraceConfig trace;
  /// Per-cycle whole-fabric invariant auditing (off by default; see
  /// src/verify). When enabled the simulator owns a NetworkInvariantAuditor
  /// wired into every NI and purge path.
  verify::AuditConfig audit;
};

class Simulator {
 public:
  struct Stats {
    int links_disabled = 0;
    std::uint64_t packets_purged = 0;
    /// Distinct flits removed network-wide by purges (link phits, input
    /// VC buffers, retransmission slots and NI queues, deduplicated).
    std::uint64_t flits_purged_total = 0;
    int routing_reconfigurations = 0;
    /// Classified links left in service because disabling them would have
    /// disconnected the mesh.
    int reroutes_refused_disconnect = 0;
  };

  explicit Simulator(SimConfig cfg);

  [[nodiscard]] Network& network() noexcept { return *net_; }
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

  /// The i-th attack's trojan (kill switch control, stats).
  [[nodiscard]] trojan::Tasp& tasp(std::size_t i) {
    return *trojans_.at(i);
  }
  [[nodiscard]] std::size_t num_trojans() const noexcept {
    return trojans_.size();
  }

  [[nodiscard]] mitigation::RouterThreatDetector& detector(RouterId r) {
    return *detectors_.at(r);
  }
  [[nodiscard]] mitigation::LObController& lob(RouterId r, int port) {
    return *lobs_.at({r, port});
  }
  [[nodiscard]] bool has_lob() const noexcept { return !lobs_.empty(); }

  /// Invoked with the id of every purged packet so the traffic layer can
  /// re-inject it (end-to-end recovery).
  using DropCallback = std::function<void(PacketId)>;
  void set_drop_callback(DropCallback cb) { on_drop_ = std::move(cb); }

  /// Advance one cycle: kill-switch schedule, reroute policy, network step.
  void step();
  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// The owned trace sink, or nullptr when tracing is disabled (or compiled
  /// out).
  [[nodiscard]] trace::TraceSink* trace_sink() noexcept {
    return trace_sink_.get();
  }
  [[nodiscard]] const trace::TraceSink* trace_sink() const noexcept {
    return trace_sink_.get();
  }

  /// The owned invariant auditor, or nullptr when auditing is disabled.
  [[nodiscard]] verify::NetworkInvariantAuditor* auditor() noexcept {
    return auditor_.get();
  }
  [[nodiscard]] const verify::NetworkInvariantAuditor* auditor()
      const noexcept {
    return auditor_.get();
  }

 private:
  friend struct htnoc::verify::StateCodec;

  void apply_kill_switch_schedule();
  void process_reroute_events();
  [[nodiscard]] LinkRef link_feeding(RouterId receiver, int in_port) const;

  SimConfig cfg_;
  std::unique_ptr<trace::TraceSink> trace_sink_;  ///< Before net_: outlives taps.
  std::unique_ptr<Network> net_;
  /// After net_: the auditor holds a reference to the network.
  std::unique_ptr<verify::NetworkInvariantAuditor> auditor_;
  std::vector<std::shared_ptr<trojan::Tasp>> trojans_;
  std::vector<std::unique_ptr<mitigation::RouterThreatDetector>> detectors_;
  std::map<std::pair<RouterId, int>, std::unique_ptr<mitigation::LObController>>
      lobs_;
  /// Reroute events flagged by detectors, applied after reroute_latency.
  struct PendingReroute {
    RouterId receiver;
    int in_port;
    Cycle ready_at;
  };
  std::vector<PendingReroute> pending_reroutes_;
  DropCallback on_drop_;
  Stats stats_;
};

}  // namespace htnoc::sim
