#include "power/energy.hpp"

#include <iomanip>

namespace htnoc::power {

EnergyReport account_energy(Network& net, const EnergyCosts& costs,
                            std::uint64_t bist_scans) {
  EnergyReport r;
  r.detection_pj = static_cast<double>(bist_scans) * costs.bist_scan_pj;
  const auto& geom = net.geometry();

  // Link traversals, split useful vs retransmitted, plus reverse-channel
  // and decode costs. OutputUnit stats give per-port attempt counts; link
  // stats give ack/nack volumes.
  for (RouterId rtr = 0; rtr < geom.num_routers(); ++rtr) {
    Router& router = net.router(rtr);
    for (int p = 0; p < router.num_ports(); ++p) {
      const auto& os = router.output(p).stats();
      const std::uint64_t first_attempts =
          os.transmissions - os.retransmissions;
      r.useful_pj +=
          static_cast<double>(first_attempts) * costs.link_traversal_pj;
      r.retransmission_pj +=
          static_cast<double>(os.retransmissions) * costs.link_traversal_pj;
      r.obfuscation_pj +=
          static_cast<double>(os.obfuscated_sends) * costs.obfuscation_pj;
      // Every accepted flit was written into the retransmission buffer and
      // read out at least once.
      r.useful_pj += static_cast<double>(os.flits_accepted) *
                     (costs.buffer_write_pj + costs.buffer_read_pj);

      const auto& is = router.input(p).stats();
      r.useful_pj +=
          static_cast<double>(is.flits_received) * costs.ecc_decode_pj;
      r.correction_pj +=
          static_cast<double>(is.corrected_singles) * costs.ecc_correction_pj;
      // Buffered flits are written and later switched out.
      r.useful_pj += static_cast<double>(is.flits_received -
                                         is.nacks_sent) *
                     costs.buffer_write_pj;
    }
  }
  for (const LinkRef& l : net.all_links()) {
    const auto& ls = net.link(l.from, l.dir).stats();
    r.useful_pj += static_cast<double>(ls.acks_sent) * costs.ack_nack_pj;
    r.retransmission_pj +=
        static_cast<double>(ls.nacks_sent) * costs.ack_nack_pj;
  }
  // NI-side injection machinery mirrors a router output port.
  for (NodeId c = 0; c < geom.num_cores(); ++c) {
    const auto& os = net.ni(c).injection_port().stats();
    const std::uint64_t first_attempts = os.transmissions - os.retransmissions;
    r.useful_pj +=
        static_cast<double>(first_attempts) * costs.link_traversal_pj;
    r.retransmission_pj +=
        static_cast<double>(os.retransmissions) * costs.link_traversal_pj;
    r.packets_delivered += net.ni(c).stats().packets_delivered;
  }
  return r;
}

void print_energy_report(std::ostream& os, const EnergyReport& r,
                         const char* label) {
  os << label << ":\n" << std::fixed << std::setprecision(1);
  os << "  useful transport  " << std::setw(12) << r.useful_pj / 1000.0
     << " nJ\n";
  os << "  retransmissions   " << std::setw(12)
     << r.retransmission_pj / 1000.0 << " nJ\n";
  os << "  ECC corrections   " << std::setw(12) << r.correction_pj / 1000.0
     << " nJ\n";
  os << "  obfuscation       " << std::setw(12) << r.obfuscation_pj / 1000.0
     << " nJ\n";
  os << "  BIST/detection    " << std::setw(12) << r.detection_pj / 1000.0
     << " nJ\n";
  os << "  total " << r.total_pj() / 1000.0 << " nJ, overhead "
     << std::setprecision(2) << 100.0 * r.overhead_fraction() << "%, "
     << std::setprecision(1) << r.pj_per_packet() << " pJ/packet over "
     << r.packets_delivered << " packets\n";
}

}  // namespace htnoc::power
