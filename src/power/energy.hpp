// Runtime energy accounting: converts a finished (or running) simulation's
// event counters into energy, using per-event costs derived from the same
// 40 nm gate model as the static tables.
//
// The paper discusses the energy consequences of its attack qualitatively —
// ECC corrections "consume more energy at the receiver", dropped/looping
// packets "have both performance and power penalties to retransmit" — but
// reports only synthesis-time power. This model quantifies the runtime
// side: how many nanojoules the trojan's retransmission storm burns, and
// what L-Ob's obfuscation penalty costs relative to it.
#pragma once

#include <cstdint>
#include <ostream>

#include "noc/network.hpp"
#include "power/blocks.hpp"

namespace htnoc::power {

/// Energy cost of one occurrence of each accountable event, in picojoules.
/// Derived from the block estimates: a block consuming P uW at 2 GHz with
/// activity a spends (P / a) * 0.5ns per fully-active cycle; per-event
/// costs below bundle the cycles each event keeps its blocks busy.
struct EnergyCosts {
  double link_traversal_pj = 2.1;   ///< Drive 72 wires one hop (incl. ECC enc).
  double buffer_write_pj = 1.4;     ///< One flit into a VC/retrans buffer.
  double buffer_read_pj = 0.9;      ///< One flit out through the crossbar.
  double ecc_decode_pj = 0.35;      ///< Syndrome computation at the receiver.
  double ecc_correction_pj = 0.6;   ///< Extra work when a bit is repaired.
  double obfuscation_pj = 0.25;     ///< L-Ob transform + undo.
  double ack_nack_pj = 0.12;        ///< Reverse-channel message.
  double bist_scan_pj = 45.0;       ///< One full pattern scan of a link.
};

/// Roll-up of a run's dynamic energy by cause.
struct EnergyReport {
  double useful_pj = 0.0;          ///< First-attempt transport of flits.
  double retransmission_pj = 0.0;  ///< Re-sent phits + their NACK traffic.
  double correction_pj = 0.0;      ///< Inline ECC repairs.
  double obfuscation_pj = 0.0;     ///< L-Ob transforms.
  double detection_pj = 0.0;       ///< BIST scans.
  std::uint64_t packets_delivered = 0;

  [[nodiscard]] double total_pj() const {
    return useful_pj + retransmission_pj + correction_pj + obfuscation_pj +
           detection_pj;
  }
  [[nodiscard]] double overhead_fraction() const {
    const double t = total_pj();
    return t == 0.0 ? 0.0 : (t - useful_pj) / t;
  }
  [[nodiscard]] double pj_per_packet() const {
    return packets_delivered == 0
               ? 0.0
               : total_pj() / static_cast<double>(packets_delivered);
  }
};

/// Account a network's current counters. Pure read; callable mid-run for
/// deltas by subtracting successive reports. `bist_scans` comes from the
/// threat detectors (the Network does not see them).
[[nodiscard]] EnergyReport account_energy(Network& net,
                                          const EnergyCosts& costs = {},
                                          std::uint64_t bist_scans = 0);

void print_energy_report(std::ostream& os, const EnergyReport& r,
                         const char* label);

}  // namespace htnoc::power
