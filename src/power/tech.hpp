// Technology model: a gate-equivalent (GE) abstraction of the paper's
// TSMC 40 nm library at 1.0 V / 2 GHz.
//
// The paper synthesizes every block with Synopsys Design Compiler; we have
// no foundry libraries, so each RTL block is sized in NAND2-equivalent
// gates and flip-flops, and converted to area / leakage / dynamic power /
// delay with per-technology constants calibrated against the paper's
// Table I "Dest" data point (see DESIGN.md, substitution table). Absolute
// values are therefore approximate; orderings and ratios are the
// reproduction target.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace htnoc::power {

struct TechParams {
  // Geometry.
  double ge_area_um2 = 0.42;     ///< Area of one NAND2-equivalent gate.
  double ff_area_um2 = 1.9;      ///< Area of one D flip-flop.
  // Leakage.
  double ge_leak_nw = 0.19;      ///< Leakage per gate at 1.0 V, 25C.
  double ff_leak_nw = 0.85;
  // Dynamic power at 2 GHz, 1.0 V, scaled by per-block activity factor.
  double ge_dyn_uw = 1.15;       ///< Dynamic power per gate at activity 1.0.
  double ff_dyn_uw = 3.8;
  // Timing.
  double gate_delay_ns = 0.028;  ///< Per logic level, including local wire.
  double clock_period_ns = 0.5;  ///< 2 GHz.
};

/// The default 40 nm calibration used throughout the repo.
[[nodiscard]] inline const TechParams& tech40() {
  static const TechParams t{};
  return t;
}

/// A synthesized block: gate/FF counts with an activity estimate and a
/// critical-path depth in logic levels.
struct BlockEstimate {
  std::string name;
  double gates = 0.0;
  double flipflops = 0.0;
  double activity = 0.1;     ///< Average switching activity of the gates.
  double logic_depth = 1.0;  ///< Levels on the critical path.

  [[nodiscard]] double area_um2(const TechParams& t = tech40()) const {
    return gates * t.ge_area_um2 + flipflops * t.ff_area_um2;
  }
  [[nodiscard]] double leakage_nw(const TechParams& t = tech40()) const {
    return gates * t.ge_leak_nw + flipflops * t.ff_leak_nw;
  }
  [[nodiscard]] double dynamic_uw(const TechParams& t = tech40()) const {
    return (gates * t.ge_dyn_uw + flipflops * t.ff_dyn_uw) * activity;
  }
  [[nodiscard]] double delay_ns(const TechParams& t = tech40()) const {
    return logic_depth * t.gate_delay_ns;
  }
  [[nodiscard]] bool meets_timing(const TechParams& t = tech40()) const {
    return delay_ns(t) <= t.clock_period_ns;
  }

  /// Sum of sub-blocks under a new name. Area, leakage and dynamic power of
  /// the combination equal the sums of the parts (activity is the
  /// dynamic-power-weighted average so the last property holds exactly).
  [[nodiscard]] static BlockEstimate combine(std::string name,
                                             const std::vector<BlockEstimate>& subs,
                                             const TechParams& t = tech40()) {
    BlockEstimate b;
    b.name = std::move(name);
    double dyn = 0.0;
    for (const auto& s : subs) {
      b.gates += s.gates;
      b.flipflops += s.flipflops;
      dyn += s.dynamic_uw(t);
      b.logic_depth = std::max(b.logic_depth, s.logic_depth);
    }
    const double cap = b.gates * t.ge_dyn_uw + b.flipflops * t.ff_dyn_uw;
    b.activity = cap > 0.0 ? dyn / cap : 0.0;
    return b;
  }
};

}  // namespace htnoc::power
