#include "power/blocks.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace htnoc::power {

namespace {
[[nodiscard]] double log2d(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

BlockEstimate comparator(unsigned k) {
  HTNOC_EXPECT(k >= 1);
  BlockEstimate b;
  b.name = "comparator" + std::to_string(k);
  // XNOR folded into an AOI reduction tree: ~1.05 GE per compared bit.
  b.gates = 1.05 * static_cast<double>(k);
  b.activity = 0.35;  // sees every traversing flit
  b.logic_depth = log2d(static_cast<double>(k)) / 2.0 + 4.0;
  return b;
}

BlockEstimate payload_counter(int y) {
  HTNOC_EXPECT(y >= 2);
  BlockEstimate b;
  b.name = "payload_counter" + std::to_string(y);
  b.flipflops = static_cast<double>(y);
  b.gates = 3.0 * static_cast<double>(y);  // next-state + decode
  b.activity = 0.05;  // holds state between injections (paper Sec. III-B)
  b.logic_depth = log2d(static_cast<double>(y)) + 2.0;
  return b;
}

BlockEstimate xor_tree(int t) {
  HTNOC_EXPECT(t >= 1);
  BlockEstimate b;
  b.name = "xor_tree" + std::to_string(t);
  b.gates = 1.5 * static_cast<double>(t);
  b.activity = 0.05;  // only toggles during an injection
  b.logic_depth = 1.0;
  return b;
}

BlockEstimate fifo(const std::string& name, int bits) {
  HTNOC_EXPECT(bits >= 1);
  BlockEstimate b;
  b.name = name;
  b.flipflops = static_cast<double>(bits);
  b.gates = 0.25 * static_cast<double>(bits);  // pointers, full/empty logic
  b.activity = 0.025;  // average occupancy-weighted switching
  b.logic_depth = 3.0;
  return b;
}

BlockEstimate cam(int entries, int width) {
  HTNOC_EXPECT(entries >= 1 && width >= 1);
  BlockEstimate b;
  b.name = "cam" + std::to_string(entries) + "x" + std::to_string(width);
  b.flipflops = static_cast<double>(entries * width);
  b.gates = 1.2 * static_cast<double>(entries * width);  // match lines
  b.activity = 0.05;  // searched only on faulty flits
  b.logic_depth = log2d(static_cast<double>(width)) + 3.0;
  return b;
}

BlockEstimate crossbar(int ports, int width) {
  HTNOC_EXPECT(ports >= 2 && width >= 1);
  BlockEstimate b;
  b.name = "crossbar" + std::to_string(ports) + "x" + std::to_string(ports);
  // Mux tree per output wire plus output drivers.
  b.gates = 1.6 * static_cast<double>(width) * static_cast<double>(ports) *
            static_cast<double>(ports);
  b.activity = 0.033;
  b.logic_depth = log2d(static_cast<double>(ports)) + 2.0;
  return b;
}

BlockEstimate allocator(const std::string& name, int requesters, int resources) {
  HTNOC_EXPECT(requesters >= 1 && resources >= 1);
  BlockEstimate b;
  b.name = name;
  b.gates = 2.0 * static_cast<double>(requesters) * static_cast<double>(resources) +
            6.0 * static_cast<double>(resources);  // arbiters + grant logic
  b.flipflops = static_cast<double>(resources);    // rotating priorities
  b.activity = 0.04;
  b.logic_depth = log2d(static_cast<double>(requesters)) + 4.0;
  return b;
}

BlockEstimate secded_codec(const std::string& name) {
  BlockEstimate b;
  b.name = name;
  // 8 parity trees over ~64 bits plus correction muxing.
  b.gates = 485.0;
  b.activity = 0.01;
  b.logic_depth = 8.0;
  return b;
}

BlockEstimate tasp_block(trojan::TargetKind kind, int y) {
  BlockEstimate control;
  control.name = "tasp_control";
  control.gates = 6.0;  // killsw gating + FSM glue
  control.activity = 0.2;
  control.logic_depth = 2.0;

  return BlockEstimate::combine(
      "tasp_" + trojan::to_string(kind),
      {comparator(trojan::target_width(kind)), payload_counter(y), xor_tree(y),
       control});
}

BlockEstimate lob_block() {
  BlockEstimate b;
  b.name = "lob";
  // Invert/rotate/XOR muxing over 64 wires, method-selection FSM and the
  // per-flow success log.
  b.gates = 150.0;
  b.flipflops = 6.0;
  b.activity = 0.1;
  b.logic_depth = 5.0;
  return b;
}

BlockEstimate threat_detector_block() {
  BlockEstimate classifier;
  classifier.name = "threat_classifier";
  classifier.gates = 180.0;
  classifier.activity = 0.05;
  classifier.logic_depth = 6.0;

  return BlockEstimate::combine("threat_detector",
                                {cam(6, 16), classifier});
}

RouterBreakdown router_breakdown(const NocConfig& cfg) {
  RouterBreakdown r;
  const int ports = cfg.ports_per_router();
  const int in_bits = ports * cfg.vcs_per_port * cfg.buffer_depth * 64;
  const int rt_bits = ports * cfg.retrans_depth * 72;
  r.buffers = fifo("router_buffers", in_bits + rt_bits);
  r.crossbar = power::crossbar(ports, 64);
  r.switch_allocator =
      allocator("switch_allocator", ports * cfg.vcs_per_port, ports);
  r.vc_allocator = allocator("vc_allocator", ports * cfg.vcs_per_port,
                             ports * cfg.vcs_per_port);

  std::vector<BlockEstimate> codecs;
  codecs.reserve(static_cast<std::size_t>(2 * ports));
  for (int p = 0; p < ports; ++p) {
    codecs.push_back(secded_codec("secded_enc"));
    codecs.push_back(secded_codec("secded_dec"));
  }
  r.ecc = BlockEstimate::combine("router_ecc", codecs);

  // Clock tree: buffers proportional to the flip-flop population, always
  // switching.
  r.clock.name = "clock_tree";
  r.clock.gates = 0.007 * (r.buffers.flipflops + 64.0);
  r.clock.activity = 1.0;
  r.clock.logic_depth = 4.0;

  r.total = BlockEstimate::combine(
      "router", {r.buffers, r.crossbar, r.switch_allocator, r.vc_allocator,
                 r.ecc, r.clock});
  return r;
}

NocBreakdown noc_breakdown(const NocConfig& cfg) {
  NocBreakdown n;
  const RouterBreakdown rb = router_breakdown(cfg);
  std::vector<BlockEstimate> routers(
      static_cast<std::size_t>(cfg.num_routers()), rb.total);
  n.routers = BlockEstimate::combine("noc_routers", routers);

  // Count unidirectional mesh links (2*(w-1)*h horizontal + 2*w*(h-1)
  // vertical = 48 for a 4x4).
  const int links = 2 * ((cfg.mesh_width - 1) * cfg.mesh_height +
                         cfg.mesh_width * (cfg.mesh_height - 1));
  std::vector<BlockEstimate> trojans(
      static_cast<std::size_t>(links),
      tasp_block(trojan::TargetKind::kDest));
  n.tasp_all_links = BlockEstimate::combine("tasp_all_links", trojans);

  // Global (inter-router) wiring dominates NoC area in the paper's chart
  // (~86% wire vs ~13% active): model it as a fixed multiple of the active
  // router area.
  n.global_wire_area_um2 = 6.6 * n.routers.area_um2();
  return n;
}

MitigationOverhead mitigation_overhead(const NocConfig& cfg) {
  MitigationOverhead m;
  m.threat_detector = threat_detector_block();
  m.lob_per_port = lob_block();
  // L-Ob attaches to the retransmission buffers of each inter-router output
  // port (4 on a mesh router).
  std::vector<BlockEstimate> blocks = {m.threat_detector, m.lob_per_port,
                                       m.lob_per_port, m.lob_per_port,
                                       m.lob_per_port};
  m.total_per_router = BlockEstimate::combine("mitigation_per_router", blocks);

  const RouterBreakdown rb = router_breakdown(cfg);
  m.area_fraction_of_router =
      m.total_per_router.area_um2() / rb.total.area_um2();
  const double mit_power =
      m.total_per_router.dynamic_uw() + m.total_per_router.leakage_nw() * 1e-3;
  const double rtr_power =
      rb.total.dynamic_uw() + rb.total.leakage_nw() * 1e-3;
  m.power_fraction_of_router = mit_power / rtr_power;
  return m;
}

const std::vector<TaspReference>& tasp_paper_reference() {
  using trojan::TargetKind;
  static const std::vector<TaspReference> ref = {
      {TargetKind::kFull, 50.45, 25.5304, 30.2694, 0.21},
      {TargetKind::kDest, 33.516, 9.9263, 16.2355, 0.21},
      {TargetKind::kSrc, 33.516, 9.9263, 16.2355, 0.21},
      {TargetKind::kDestSrc, 37.044, 10.9416, 16.2498, 0.21},
      {TargetKind::kMem, 44.4528, 10.1997, 17.0468, 0.21},
      {TargetKind::kVc, 31.9284, 10.5953, 15.0765, 0.21},
  };
  return ref;
}

}  // namespace htnoc::power
