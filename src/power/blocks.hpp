// Gate-level size estimates for every RTL block evaluated in the paper:
// the TASP trojan variants (Table I / Fig. 9), the router and full NoC
// (Fig. 8), and the proposed mitigation hardware (Table II).
#pragma once

#include "common/config.hpp"
#include "power/tech.hpp"
#include "trojan/tasp.hpp"

namespace htnoc::power {

// --- primitive blocks ---

/// k-bit equality comparator: k XNORs plus an AND-reduction tree.
[[nodiscard]] BlockEstimate comparator(unsigned k);
/// y-state payload counter FSM: flip-flops + next-state / decode logic.
[[nodiscard]] BlockEstimate payload_counter(int y);
/// XOR fault-insertion tree tapping t wires of the link.
[[nodiscard]] BlockEstimate xor_tree(int t);
/// FIFO buffer storage of `bits` total bits (input VC or retransmission).
[[nodiscard]] BlockEstimate fifo(const std::string& name, int bits);
/// CAM of `entries` x `width` bits (threat-detector fault history).
[[nodiscard]] BlockEstimate cam(int entries, int width);
/// ports x ports crossbar of `width`-bit wires (mux-tree implementation).
[[nodiscard]] BlockEstimate crossbar(int ports, int width);
/// Separable allocator (VA or SA) over `requesters` x `resources`.
[[nodiscard]] BlockEstimate allocator(const std::string& name, int requesters,
                                      int resources);
/// SECDED (72,64) encoder or decoder.
[[nodiscard]] BlockEstimate secded_codec(const std::string& name);

// --- paper blocks ---

/// One TASP trojan tuned to `kind` with a y-state payload FSM (Table I).
[[nodiscard]] BlockEstimate tasp_block(trojan::TargetKind kind, int y = 8);

/// The L-Ob switch-to-switch obfuscation datapath for one output port
/// (invert/shuffle/scramble muxes over 64 wires + method log + control).
[[nodiscard]] BlockEstimate lob_block();

/// The per-router threat source detector (history CAM + classifier FSM +
/// BIST sequencer).
[[nodiscard]] BlockEstimate threat_detector_block();

/// Component breakdown of one router (Fig. 8 pie charts).
struct RouterBreakdown {
  BlockEstimate buffers;
  BlockEstimate crossbar;
  BlockEstimate switch_allocator;
  BlockEstimate vc_allocator;
  BlockEstimate ecc;
  BlockEstimate clock;
  BlockEstimate total;  ///< Sum of the above.
};
[[nodiscard]] RouterBreakdown router_breakdown(const NocConfig& cfg);

/// Whole-NoC roll-up (Fig. 8 right charts).
struct NocBreakdown {
  BlockEstimate routers;        ///< All routers.
  BlockEstimate tasp_all_links; ///< Worst case: a TASP on every mesh link.
  double global_wire_area_um2 = 0.0;
  [[nodiscard]] double total_area_um2() const {
    return routers.area_um2() + tasp_all_links.area_um2() + global_wire_area_um2;
  }
};
[[nodiscard]] NocBreakdown noc_breakdown(const NocConfig& cfg);

/// Mitigation totals per router (Table II): one threat detector plus one
/// L-Ob block per inter-router output port.
struct MitigationOverhead {
  BlockEstimate threat_detector;
  BlockEstimate lob_per_port;
  BlockEstimate total_per_router;  ///< detector + 4 x L-Ob.
  double area_fraction_of_router = 0.0;
  double power_fraction_of_router = 0.0;  ///< dynamic + leakage combined.
};
[[nodiscard]] MitigationOverhead mitigation_overhead(const NocConfig& cfg);

// --- paper reference values for side-by-side reporting ---

/// Table I row as printed in the paper.
struct TaspReference {
  trojan::TargetKind kind;
  double area_um2;
  double dynamic_uw;
  double leakage_nw;
  double timing_ns;
};
[[nodiscard]] const std::vector<TaspReference>& tasp_paper_reference();

}  // namespace htnoc::power
