// L-Ob — the switch-to-switch link-obfuscation controller (paper Sec. IV-A,
// Fig. 4), attached to one output port's retransmission buffers.
//
// When the downstream threat detector advises escalation, the controller
// walks an ordered sequence of (method, granularity) combinations —
// invert, shuffle, scramble at header/flit/payload granularity — until a
// transmission succeeds. Successful methods are logged per flow signature
// so later flits "having the same problem" jump straight to the method that
// worked (paper Fig. 6, final step).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "noc/hooks.hpp"
#include "noc/obfuscation.hpp"
#include "trace/sink.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::mitigation {

struct LObParams {
  /// Escalation order. The default walks granularities from header (the
  /// usual DPI trigger region) out to the whole flit, across all three
  /// methods.
  std::vector<std::pair<ObfMethod, ObfGranularity>> sequence = {
      {ObfMethod::kInvert, ObfGranularity::kHeader},
      {ObfMethod::kShuffle, ObfGranularity::kHeader},
      {ObfMethod::kScramble, ObfGranularity::kFlit},
      {ObfMethod::kInvert, ObfGranularity::kFlit},
      {ObfMethod::kShuffle, ObfGranularity::kFlit},
      {ObfMethod::kInvert, ObfGranularity::kPayload},
      {ObfMethod::kShuffle, ObfGranularity::kPayload},
  };
  /// Consult the per-flow success log to skip straight to a proven method.
  bool use_success_log = true;
};

/// A single-entry escalation sequence: every escalated transmission uses
/// exactly (method, granularity) with no fallback. Used by ablations and
/// the fault campaign to force one obfuscation method and observe its
/// standalone effect.
[[nodiscard]] inline LObParams forced_lob_params(ObfMethod method,
                                                ObfGranularity granularity) {
  LObParams p;
  p.sequence = {{method, granularity}};
  return p;
}

class LObController final : public htnoc::LObController {
 public:
  struct Stats {
    std::uint64_t obfuscated_attempts = 0;
    std::uint64_t successes = 0;          ///< ACKed obfuscated transmissions.
    std::uint64_t method_exhaustions = 0; ///< Walked off the sequence end.
    std::uint64_t log_hits = 0;
  };

  explicit LObController(LObParams params = {}) : params_(std::move(params)) {
    HTNOC_EXPECT(!params_.sequence.empty());
  }

  // --- htnoc::LObController interface ---
  ObfuscationTag plan(Cycle now, const Flit& flit, int attempt, bool escalate,
                      bool partner_available) override;
  void on_ack(Cycle now, const Flit& flit, const ObfuscationTag& tag) override;
  void on_nack(Cycle now, const Flit& flit, const ObfuscationTag& tag) override;

  /// Install the trace tap under the owning router's track, tagged with the
  /// output port this controller guards.
  void set_trace(trace::Tap tap, std::uint16_t router, std::int8_t port) {
    tap_ = tap;
    trace_node_ = router;
    trace_port_ = port;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Logged successful sequence index for a flow, or -1. For tests.
  [[nodiscard]] int logged_method(RouterId src, RouterId dest) const {
    const auto it = success_log_.find(flow_key(src, dest));
    return it == success_log_.end() ? -1 : it->second;
  }

 private:
  friend struct htnoc::verify::StateCodec;

  [[nodiscard]] static std::uint32_t flow_key(RouterId src, RouterId dest) noexcept {
    return (static_cast<std::uint32_t>(dest) << 16) | src;
  }

  /// Sequence cursor for a flit currently being escalated.
  struct FlitState {
    int seq_index = 0;
    bool active = false;
  };

  LObParams params_;
  std::map<std::uint64_t, FlitState> flit_states_;  // by flit uid
  std::map<std::uint32_t, int> success_log_;        // flow key -> seq index
  trace::Tap tap_;
  std::uint16_t trace_node_ = 0;
  std::int8_t trace_port_ = -1;
  Stats stats_;
};

}  // namespace htnoc::mitigation
