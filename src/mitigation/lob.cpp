#include "mitigation/lob.hpp"

namespace htnoc::mitigation {

ObfuscationTag LObController::plan(Cycle now, const Flit& flit, int attempt,
                                   bool escalate, bool partner_available) {
  (void)attempt;
  const std::uint64_t uid = flit.flit_uid();
  auto it = flit_states_.find(uid);

  if (!escalate && it == flit_states_.end()) {
    return {};  // On-demand only: never obfuscate an untroubled flit.
  }

  if (it == flit_states_.end()) {
    FlitState st;
    st.active = true;
    // Jump to the logged method for this flow when we have one.
    if (params_.use_success_log) {
      const auto log_it =
          success_log_.find(flow_key(flit.src_router, flit.dest_router));
      if (log_it != success_log_.end()) {
        st.seq_index = log_it->second;
        ++stats_.log_hits;
      }
    }
    it = flit_states_.emplace(uid, st).first;
  }

  // Pick the current sequence entry, skipping scramble when no partner flit
  // is available in the retransmission buffer.
  const int n = static_cast<int>(params_.sequence.size());
  for (int probe = 0; probe < n; ++probe) {
    const int idx = (it->second.seq_index + probe) % n;
    const auto& [method, gran] = params_.sequence[static_cast<std::size_t>(idx)];
    if (method == ObfMethod::kScramble && !partner_available) continue;
    it->second.seq_index = idx;
    ObfuscationTag tag;
    tag.method = method;
    tag.granularity = gran;
    if (method == ObfMethod::kReorder) {
      // Reorder is one-shot scheduling advice with no transmission of its
      // own (no ACK/NACK will report back); advance the cursor now so the
      // eventual send uses the next method.
      it->second.seq_index = (idx + 1) % n;
      if (it->second.seq_index == 0) ++stats_.method_exhaustions;
    }
    ++stats_.obfuscated_attempts;
    if (tap_.on(trace::Category::kLOb)) {
      trace::Event e = trace::make_event(trace::EventType::kLObMethodApplied,
                                         now, trace::Scope::kRouter,
                                         trace_node_, trace_port_);
      e.packet = flit.packet;
      e.seq = static_cast<std::uint32_t>(flit.seq);
      e.arg = static_cast<std::uint64_t>(method);
      e.aux = static_cast<std::uint8_t>(idx);
      tap_.emit(e);
    }
    return tag;
  }
  // Only scramble entries and no partner: fall back to plain.
  return {};
}

void LObController::on_ack(Cycle now, const Flit& flit, const ObfuscationTag& tag) {
  const std::uint64_t uid = flit.flit_uid();
  const auto it = flit_states_.find(uid);
  if (tag.active()) {
    ++stats_.successes;
    if (params_.use_success_log && it != flit_states_.end()) {
      success_log_[flow_key(flit.src_router, flit.dest_router)] =
          it->second.seq_index;
    }
    if (tap_.on(trace::Category::kLOb)) {
      trace::Event e = trace::make_event(trace::EventType::kLObMethodSuccess,
                                         now, trace::Scope::kRouter,
                                         trace_node_, trace_port_);
      e.packet = flit.packet;
      e.seq = static_cast<std::uint32_t>(flit.seq);
      e.arg = static_cast<std::uint64_t>(tag.method);
      if (it != flit_states_.end()) {
        e.aux = static_cast<std::uint8_t>(it->second.seq_index);
      }
      tap_.emit(e);
    }
  }
  if (it != flit_states_.end()) flit_states_.erase(it);
}

void LObController::on_nack(Cycle now, const Flit& flit, const ObfuscationTag& tag) {
  if (!tag.active()) return;  // plain attempt failed; detector will escalate
  const auto it = flit_states_.find(flit.flit_uid());
  if (it == flit_states_.end()) return;
  // The method was tried and beaten; advance to the next one.
  const int n = static_cast<int>(params_.sequence.size());
  ++it->second.seq_index;
  if (it->second.seq_index >= n) {
    it->second.seq_index = 0;
    ++stats_.method_exhaustions;
    if (tap_.on(trace::Category::kLOb)) {
      trace::Event e = trace::make_event(trace::EventType::kLObExhausted, now,
                                         trace::Scope::kRouter, trace_node_,
                                         trace_port_);
      e.packet = flit.packet;
      e.seq = static_cast<std::uint32_t>(flit.seq);
      e.arg = static_cast<std::uint64_t>(tag.method);
      tap_.emit(e);
    }
  }
}

}  // namespace htnoc::mitigation
