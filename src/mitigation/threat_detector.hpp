// The receiver-side threat detector (paper Sec. IV-B, Fig. 6).
//
// For every faulty flit it records the syndrome and the packet's
// characteristics, then follows the paper's decision flow:
//   * first fault on a flit           -> plain retransmission (could be a
//                                        transient);
//   * repeat fault on the same flit   -> dispatch BIST (repetitive
//                                        transients are unlikely) and tell
//                                        the upstream L-Ob to obfuscate the
//                                        next attempt;
//   * BIST finds stuck wires          -> classify the link PERMANENT;
//   * repeats persist, BIST clean     -> classify the link TROJAN.
//
// The per-link classification is what the mitigation policy consumes: the
// L-Ob policy keeps using the link through obfuscation; the rerouting
// (Ariadne) policy disables it and reconfigures routing.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "mitigation/bist.hpp"
#include "noc/hooks.hpp"
#include "noc/link.hpp"
#include "trace/sink.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::mitigation {

enum class LinkThreatClass : std::uint8_t {
  kClean,      ///< No faults observed.
  kTransient,  ///< Isolated, non-repeating faults.
  kSuspect,    ///< Repeat fault seen; BIST in flight.
  kPermanent,  ///< BIST confirmed stuck wires.
  kTrojan,     ///< Targeted repeats with clean BIST.
};

std::string to_string(LinkThreatClass c);

struct ThreatDetectorParams {
  int history_depth = 16;        ///< Fault-history CAM entries per port.
  int escalate_after = 2;        ///< Faults on one flit before L-Ob advice.
  int trojan_flit_threshold = 2; ///< Distinct repeat-fault flits => trojan.
  /// Alternative single-flit evidence: one flit faulting this many times at
  /// *moving* locations (with a clean BIST) is targeted, not transient —
  /// needed when the very first wedged flit starves the link of further
  /// targets.
  int trojan_single_flit_count = 4;
  /// Position-reuse evidence (paper Sec. III-B: "if faults are injected
  /// frequently onto the same wires, the compromised link may draw
  /// attention"): the same syndrome recurring this many times on one port,
  /// with a clean BIST, flags a trojan whose payload counter (small Y) is
  /// cycling through too few locations. Random transients virtually never
  /// repeat a 7-bit syndrome this often.
  int trojan_syndrome_repeat = 6;
  Cycle bist_latency = kBistScanLatency;
};

/// One router's threat detector, observing all of its input ports.
class RouterThreatDetector final : public ThreatDetector {
 public:
  struct PortStats {
    std::uint64_t uncorrectable = 0;
    std::uint64_t corrected = 0;
    std::uint64_t clean = 0;
    std::uint64_t escalations_advised = 0;
    std::uint64_t bist_scans = 0;
  };

  explicit RouterThreatDetector(ThreatDetectorParams params = {})
      : params_(params) {}

  /// Give the detector the link feeding input port `port`, enabling BIST.
  void set_port_link(int port, const Link* link) {
    ports_[port].link = link;
  }

  /// Install the trace tap under the owning router's track.
  void set_trace(trace::Tap tap, std::uint16_t router) {
    tap_ = tap;
    trace_node_ = router;
  }

  /// Optional notification when a port's link is first classified TROJAN or
  /// PERMANENT (the rerouting policy hooks this to disable links).
  using ClassificationCallback =
      std::function<void(int port, LinkThreatClass cls)>;
  void set_classification_callback(ClassificationCallback cb) {
    on_classified_ = std::move(cb);
  }

  [[nodiscard]] LinkThreatClass classification(int port) const {
    const auto it = ports_.find(port);
    return it == ports_.end() ? LinkThreatClass::kClean : it->second.cls;
  }
  [[nodiscard]] PortStats port_stats(int port) const {
    const auto it = ports_.find(port);
    return it == ports_.end() ? PortStats{} : it->second.stats;
  }

  // --- ThreatDetector interface ---
  NackAdvice on_uncorrectable(const FaultObservation& obs) override;
  void on_corrected(const FaultObservation& obs) override;
  void on_clean(const FaultObservation& obs) override;

 private:
  friend struct htnoc::verify::StateCodec;

  struct HistoryEntry {
    std::uint64_t uid = 0;
    int fault_count = 0;
    std::uint8_t last_syndrome = 0;
    bool syndrome_moved = false;  ///< Fault location changed between repeats.
    Cycle last_seen = 0;
  };

  struct PortState {
    const Link* link = nullptr;
    std::deque<HistoryEntry> history;
    int repeat_fault_flits = 0;
    /// Highest fault count seen on one flit whose fault location moved.
    int max_moving_fault_count = 0;
    /// Syndrome-frequency sketch for the position-reuse heuristic (small,
    /// bounded: 7-bit syndromes).
    std::map<std::uint8_t, int> syndrome_counts;
    int max_syndrome_repeat = 0;
    bool bist_pending = false;
    Cycle bist_done_at = 0;
    bool bist_ran = false;
    BistReport bist_report;
    LinkThreatClass cls = LinkThreatClass::kClean;
    PortStats stats;
  };

  void maybe_complete_bist(Cycle now, int port, PortState& ps);
  void reclassify(Cycle now, int port, PortState& ps);

  ThreatDetectorParams params_;
  std::map<int, PortState> ports_;
  ClassificationCallback on_classified_;
  trace::Tap tap_;
  std::uint16_t trace_node_ = 0;
};

}  // namespace htnoc::mitigation
