// Built-in self-test for a link: drives canonical test patterns through the
// link's passive fault path and reports wires stuck at a constant value.
//
// A dormant or kill-switch-guarded trojan does not answer probes (its
// comparator never matches synthetic patterns and, per the paper, the
// killsw specifically exists to survive logic testing) — which is exactly
// why the threat detector needs a *negative* BIST result to tell a trojan
// from a permanent fault: repeated faults + clean BIST => targeted attack.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "noc/link.hpp"

namespace htnoc::mitigation {

struct BistReport {
  bool permanent_fault_found = false;
  std::vector<unsigned> stuck_wires;  ///< Positions stuck at a constant.
};

/// Latency budget of one scan, in cycles (pattern count x link round trip).
inline constexpr Cycle kBistScanLatency = 32;

/// Scan `link` with alternating/all-0/all-1 patterns. Pure with respect to
/// the network (uses the probe path only).
[[nodiscard]] inline BistReport bist_scan(const Link& link) {
  // Two complementary patterns suffice for stuck-at faults: a wire stuck at
  // v reads v under both.
  const std::array<Codeword72, 4> patterns = {
      Codeword72{0x0000000000000000ULL, 0x00},
      Codeword72{0xFFFFFFFFFFFFFFFFULL, 0xFF},
      Codeword72{0x5555555555555555ULL, 0x55},
      Codeword72{0xAAAAAAAAAAAAAAAAULL, 0xAA},
  };

  BistReport report;
  for (unsigned pos = 0; pos < Codeword72::kBits; ++pos) {
    bool always_zero = true;
    bool always_one = true;
    for (const Codeword72& p : patterns) {
      const Codeword72 observed = link.probe(p);
      if (observed.get(pos)) {
        always_zero = false;
      } else {
        always_one = false;
      }
    }
    if (always_zero || always_one) report.stuck_wires.push_back(pos);
  }
  report.permanent_fault_found = !report.stuck_wires.empty();
  return report;
}

}  // namespace htnoc::mitigation
