// Runtime latency auditor — the detection baseline of the paper's related
// work (JS et al., NOCS'15 [13]): monitor end-to-end packet latencies and
// raise an alarm when they deviate from a learned baseline.
//
// The paper's critique, which bench_ablation quantifies: "using delay to
// detect an attack is difficult as several factors influence packet latency
// during normal operation" — bursty-but-benign congestion trips the same
// alarm, and a trojan that *stops* packets entirely produces no late
// deliveries to observe at all. Our threat detector sees the fault
// syndromes directly and has neither problem.
#pragma once

#include <cstdint>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace htnoc::mitigation {

class LatencyAuditor {
 public:
  struct Params {
    /// EWMA smoothing factor for the learned baseline (per delivery).
    double baseline_alpha = 0.02;
    /// Alarm when latency exceeds baseline by this factor...
    double threshold_factor = 3.0;
    /// ...for this many consecutive deliveries.
    int consecutive_required = 8;
    /// Deliveries to observe before the baseline counts as trained.
    std::uint64_t warmup_deliveries = 200;
  };

  struct Stats {
    std::uint64_t deliveries_observed = 0;
    std::uint64_t over_threshold = 0;
    std::uint64_t alarms = 0;
    Cycle first_alarm_at = 0;
  };

  LatencyAuditor() : LatencyAuditor(Params{}) {}
  explicit LatencyAuditor(Params params) : params_(params) {
    HTNOC_EXPECT(params_.baseline_alpha > 0.0 && params_.baseline_alpha <= 1.0);
    HTNOC_EXPECT(params_.threshold_factor > 1.0);
    HTNOC_EXPECT(params_.consecutive_required >= 1);
  }

  /// Feed one delivered packet's end-to-end latency.
  void observe(Cycle now, Cycle latency) {
    ++stats_.deliveries_observed;
    const auto lat = static_cast<double>(latency);
    if (stats_.deliveries_observed <= params_.warmup_deliveries) {
      baseline_ = baseline_ == 0.0
                      ? lat
                      : baseline_ + params_.baseline_alpha * (lat - baseline_);
      return;
    }
    if (lat > baseline_ * params_.threshold_factor) {
      ++stats_.over_threshold;
      ++consecutive_;
      if (consecutive_ >= params_.consecutive_required) {
        if (!alarmed_) {
          alarmed_ = true;
          ++stats_.alarms;
          if (stats_.first_alarm_at == 0) stats_.first_alarm_at = now;
        }
      }
    } else {
      consecutive_ = 0;
      if (alarmed_) alarmed_ = false;  // alarm clears when latency recovers
      // Keep adapting slowly to drift while healthy.
      baseline_ = baseline_ + params_.baseline_alpha * (lat - baseline_);
    }
  }

  [[nodiscard]] bool alarmed() const noexcept { return alarmed_; }
  [[nodiscard]] double baseline() const noexcept { return baseline_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  Params params_;
  double baseline_ = 0.0;
  int consecutive_ = 0;
  bool alarmed_ = false;
  Stats stats_;
};

}  // namespace htnoc::mitigation
