#include "mitigation/threat_detector.hpp"

#include <algorithm>

namespace htnoc::mitigation {

std::string to_string(LinkThreatClass c) {
  switch (c) {
    case LinkThreatClass::kClean: return "clean";
    case LinkThreatClass::kTransient: return "transient";
    case LinkThreatClass::kSuspect: return "suspect";
    case LinkThreatClass::kPermanent: return "permanent";
    case LinkThreatClass::kTrojan: return "trojan";
  }
  return "?";
}

void RouterThreatDetector::maybe_complete_bist(Cycle now, int port,
                                               PortState& ps) {
  if (!ps.bist_pending || now < ps.bist_done_at) return;
  ps.bist_pending = false;
  ps.bist_ran = true;
  if (ps.link != nullptr) {
    ps.bist_report = bist_scan(*ps.link);
  }
  if (tap_.on(trace::Category::kBist)) {
    trace::Event e = trace::make_event(trace::EventType::kBistCompleted, now,
                                       trace::Scope::kRouter, trace_node_,
                                       static_cast<std::int8_t>(port));
    e.aux = ps.bist_report.permanent_fault_found ? 1 : 0;
    tap_.emit(e);
  }
  reclassify(now, port, ps);
}

void RouterThreatDetector::reclassify(Cycle now, int port, PortState& ps) {
  LinkThreatClass next = ps.cls;
  if (ps.bist_ran && ps.bist_report.permanent_fault_found) {
    next = LinkThreatClass::kPermanent;
  } else if (ps.bist_ran &&
             (ps.repeat_fault_flits >= params_.trojan_flit_threshold ||
              ps.max_moving_fault_count >= params_.trojan_single_flit_count ||
              ps.max_syndrome_repeat >= params_.trojan_syndrome_repeat)) {
    next = LinkThreatClass::kTrojan;
  } else if (ps.repeat_fault_flits > 0) {
    next = LinkThreatClass::kSuspect;
  } else if (ps.stats.uncorrectable > 0 || ps.stats.corrected > 0) {
    next = LinkThreatClass::kTransient;
  }
  if (next != ps.cls) {
    ps.cls = next;
    if (tap_.on(trace::Category::kDetector)) {
      trace::Event e = trace::make_event(
          trace::EventType::kDetectorClassified, now, trace::Scope::kRouter,
          trace_node_, static_cast<std::int8_t>(port));
      e.aux = static_cast<std::uint8_t>(next);
      tap_.emit(e);
    }
    if (on_classified_ != nullptr &&
        (next == LinkThreatClass::kTrojan || next == LinkThreatClass::kPermanent)) {
      on_classified_(port, next);
    }
  }
}

NackAdvice RouterThreatDetector::on_uncorrectable(const FaultObservation& obs) {
  PortState& ps = ports_[obs.in_port];
  ++ps.stats.uncorrectable;
  maybe_complete_bist(obs.now, obs.in_port, ps);

  // Position-reuse sketch: a trojan with a small payload counter keeps
  // striking the same wire pairs, so its syndromes repeat.
  const int reps = ++ps.syndrome_counts[obs.ecc.syndrome];
  ps.max_syndrome_repeat = std::max(ps.max_syndrome_repeat, reps);

  const std::uint64_t uid = obs.flit.flit_uid();
  auto it = std::find_if(ps.history.begin(), ps.history.end(),
                         [&](const HistoryEntry& e) { return e.uid == uid; });
  if (it == ps.history.end()) {
    HistoryEntry e;
    e.uid = uid;
    e.fault_count = 1;
    e.last_syndrome = obs.ecc.syndrome;
    e.last_seen = obs.now;
    ps.history.push_back(e);
    if (static_cast<int>(ps.history.size()) > params_.history_depth) {
      ps.history.pop_front();
    }
    it = std::prev(ps.history.end());
  } else {
    ++it->fault_count;
    it->syndrome_moved = it->syndrome_moved || (it->last_syndrome != obs.ecc.syndrome);
    it->last_syndrome = obs.ecc.syndrome;
    it->last_seen = obs.now;
    if (it->fault_count == params_.escalate_after) ++ps.repeat_fault_flits;
    if (it->syndrome_moved) {
      ps.max_moving_fault_count =
          std::max(ps.max_moving_fault_count, it->fault_count);
    }
  }

  NackAdvice advice;
  if (it->fault_count >= params_.escalate_after) {
    // "If the flit has been retransmitted before ... notify BIST ... if the
    // flit was also obfuscated previously, notify the upstream module so
    // that the next method can be used."
    advice.escalate_obfuscation = true;
    ++ps.stats.escalations_advised;
    if (tap_.on(trace::Category::kDetector)) {
      trace::Event e = trace::make_event(
          trace::EventType::kDetectorEscalation, obs.now, trace::Scope::kRouter,
          trace_node_, static_cast<std::int8_t>(obs.in_port));
      e.packet = obs.flit.packet;
      e.seq = static_cast<std::uint32_t>(obs.flit.seq);
      e.aux = static_cast<std::uint8_t>(
          it->fault_count > 255 ? 255 : it->fault_count);
      tap_.emit(e);
    }
    if (!ps.bist_pending && !ps.bist_ran) {
      ps.bist_pending = true;
      ps.bist_done_at = obs.now + params_.bist_latency;
      ++ps.stats.bist_scans;
      advice.request_bist = true;
      if (tap_.on(trace::Category::kBist)) {
        trace::Event e = trace::make_event(
            trace::EventType::kBistDispatched, obs.now, trace::Scope::kRouter,
            trace_node_, static_cast<std::int8_t>(obs.in_port));
        e.arg = ps.bist_done_at;
        tap_.emit(e);
      }
    }
  }
  reclassify(obs.now, obs.in_port, ps);
  return advice;
}

void RouterThreatDetector::on_corrected(const FaultObservation& obs) {
  PortState& ps = ports_[obs.in_port];
  ++ps.stats.corrected;
  maybe_complete_bist(obs.now, obs.in_port, ps);
  reclassify(obs.now, obs.in_port, ps);
}

void RouterThreatDetector::on_clean(const FaultObservation& obs) {
  PortState& ps = ports_[obs.in_port];
  ++ps.stats.clean;
  maybe_complete_bist(obs.now, obs.in_port, ps);
}

}  // namespace htnoc::mitigation
