// End-to-end obfuscation baseline in the spirit of Fort-NoCs (Ancajas et
// al., DAC'14), which the paper compares against in Fig. 11(a).
//
// The source NI scrambles the packet's *data* — the memory address and
// payload words — with a per-(src,dest) key; the destination NI unscrambles.
// Crucially, the routing fields (src, dest, VC) CANNOT be scrambled hop-
// invariantly because every router needs them to route, which is exactly
// why e2e obfuscation fails against an in-network DPI trojan keyed on the
// destination field: the paper's Fig. 11(a) scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "noc/wire.hpp"

namespace htnoc::mitigation {

class E2eObfuscator {
 public:
  explicit E2eObfuscator(std::uint64_t secret) : secret_(secret) {}

  /// Key stream for one (src, dest) pair; splitmix64 of the pair + secret.
  [[nodiscard]] std::uint64_t key(NodeId src, NodeId dest) const noexcept {
    std::uint64_t z = secret_ ^ (static_cast<std::uint64_t>(src) << 32) ^
                      static_cast<std::uint64_t>(dest);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Scramble the memory-address field of a header. Self-inverse.
  [[nodiscard]] std::uint32_t scramble_mem(NodeId src, NodeId dest,
                                           std::uint32_t mem) const noexcept {
    return mem ^ static_cast<std::uint32_t>(key(src, dest) & 0xFFFFFFFFu);
  }

  /// Scramble payload words (body-flit wire images, type bits preserved).
  [[nodiscard]] std::vector<std::uint64_t> scramble_payload(
      NodeId src, NodeId dest, std::vector<std::uint64_t> words) const {
    const std::uint64_t k =
        key(src, dest) & ~(((std::uint64_t{1} << wire::kTypeWidth) - 1)
                           << wire::kTypePos);
    for (auto& w : words) w ^= k;
    return words;
  }

  [[nodiscard]] std::vector<std::uint64_t> unscramble_payload(
      NodeId src, NodeId dest, std::vector<std::uint64_t> words) const {
    return scramble_payload(src, dest, std::move(words));  // XOR involution
  }

 private:
  std::uint64_t secret_;
};

}  // namespace htnoc::mitigation
