#include "traffic/app_profile.hpp"

#include <cmath>

#include "common/expect.hpp"

namespace htnoc::traffic {

AppTrafficModel::AppTrafficModel(const MeshGeometry& geom, AppProfile profile)
    : geom_(geom), profile_(std::move(profile)) {
  HTNOC_EXPECT(profile_.injection_rate > 0.0 && profile_.injection_rate <= 1.0);
  HTNOC_EXPECT(profile_.min_len >= 1 && profile_.max_len >= profile_.min_len);
  HTNOC_EXPECT(profile_.max_len <= 15);  // wire header length field is 4 bits
  rebuild_tables();
}

void AppTrafficModel::migrate_hotspot(RouterId from, RouterId to) {
  HTNOC_EXPECT(from < geom_.num_routers() && to < geom_.num_routers());
  for (auto& [router, weight] : profile_.hotspots) {
    if (router == from) router = to;
  }
  rebuild_tables();
}

void AppTrafficModel::rebuild_tables() {
  const int nr = geom_.num_routers();
  const int nc = geom_.num_cores();
  cum_weights_.assign(static_cast<std::size_t>(nr), {});
  for (RouterId sr = 0; sr < nr; ++sr) {
    auto& cw = cum_weights_[static_cast<std::size_t>(sr)];
    cw.resize(static_cast<std::size_t>(nc));
    double acc = 0.0;
    for (NodeId dc = 0; dc < nc; ++dc) {
      const RouterId dr = geom_.router_of_core(dc);
      const int hops = geom_.hop_distance(sr, dr);
      const double w =
          hot_weight(dr) * std::exp(-static_cast<double>(hops) / profile_.distance_decay);
      acc += w;
      cw[static_cast<std::size_t>(dc)] = acc;
    }
    HTNOC_ENSURE(acc > 0.0);
  }
}

double AppTrafficModel::hot_weight(RouterId r) const {
  for (const auto& [hr, w] : profile_.hotspots) {
    if (hr == r) return w;
  }
  return profile_.background_weight;
}

NodeId AppTrafficModel::pick_dest(NodeId src, Rng& rng) const {
  const RouterId sr = geom_.router_of_core(src);
  const auto& cw = cum_weights_[static_cast<std::size_t>(sr)];
  const double total = cw.back();
  for (;;) {
    const double u = rng.next_double() * total;
    // Binary search over the cumulative weights.
    std::size_t lo = 0;
    std::size_t hi = cw.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cw[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const auto dest = static_cast<NodeId>(lo);
    if (dest != src) return dest;
  }
}

int AppTrafficModel::pick_length(Rng& rng) const {
  return static_cast<int>(rng.next_in(static_cast<std::uint64_t>(profile_.min_len),
                                      static_cast<std::uint64_t>(profile_.max_len)));
}

std::uint32_t AppTrafficModel::pick_mem(Rng& rng) const {
  return profile_.mem_base +
         static_cast<std::uint32_t>(rng.next_below(profile_.mem_span));
}

std::vector<std::vector<double>> AppTrafficModel::demand_matrix() const {
  const int nr = geom_.num_routers();
  std::vector<std::vector<double>> m(
      static_cast<std::size_t>(nr),
      std::vector<double>(static_cast<std::size_t>(nr), 0.0));
  double total = 0.0;
  for (RouterId sr = 0; sr < nr; ++sr) {
    for (RouterId dr = 0; dr < nr; ++dr) {
      const int hops = geom_.hop_distance(sr, dr);
      const double w =
          hot_weight(dr) * std::exp(-static_cast<double>(hops) / profile_.distance_decay);
      m[static_cast<std::size_t>(sr)][static_cast<std::size_t>(dr)] = w;
      total += w;
    }
  }
  for (auto& row : m) {
    for (auto& v : row) v /= total;
  }
  return m;
}

AppProfile blackscholes_profile() {
  AppProfile p;
  p.name = "blackscholes";
  // The paper's Fig. 1: strong localization around router 0 (the primary
  // core), sharp decay with distance.
  p.injection_rate = 0.012;
  p.hotspots = {{0, 24.0}, {1, 4.0}, {4, 4.0}};
  p.background_weight = 1.0;
  p.distance_decay = 2.0;
  p.reply_fraction = 0.7;
  p.min_len = 1;
  p.max_len = 5;
  p.mem_base = 0x1000'0000;
  return p;
}

AppProfile facesim_profile() {
  AppProfile p;
  p.name = "facesim";
  // Two cooperating primaries with moderate spread.
  p.injection_rate = 0.014;
  p.hotspots = {{0, 12.0}, {5, 12.0}};
  p.background_weight = 1.5;
  p.distance_decay = 2.0;
  p.reply_fraction = 0.6;
  p.min_len = 2;
  p.max_len = 5;
  p.mem_base = 0x2000'0000;
  return p;
}

AppProfile ferret_profile() {
  AppProfile p;
  p.name = "ferret";
  // Pipeline-parallel: a chain of stage hotspots.
  p.injection_rate = 0.016;
  p.hotspots = {{0, 8.0}, {3, 8.0}, {12, 8.0}, {15, 8.0}};
  p.background_weight = 1.0;
  p.distance_decay = 3.0;
  p.reply_fraction = 0.5;
  p.min_len = 1;
  p.max_len = 4;
  p.mem_base = 0x3000'0000;
  return p;
}

AppProfile fft_profile() {
  AppProfile p;
  p.name = "fft";
  // Butterfly-style all-to-all with mild center bias and long packets.
  p.injection_rate = 0.018;
  p.hotspots = {{5, 3.0}, {6, 3.0}, {9, 3.0}, {10, 3.0}};
  p.background_weight = 2.0;
  p.distance_decay = 4.0;
  p.reply_fraction = 0.4;
  p.min_len = 2;
  p.max_len = 5;
  p.mem_base = 0x4000'0000;
  return p;
}

std::vector<AppProfile> all_profiles() {
  return {blackscholes_profile(), facesim_profile(), ferret_profile(),
          fft_profile()};
}

AppProfile profile_by_name(const std::string& name) {
  for (auto& p : all_profiles()) {
    if (p.name == name) return p;
  }
  throw ContractViolation("unknown application profile: " + name);
}

}  // namespace htnoc::traffic
