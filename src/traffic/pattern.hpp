// Synthetic destination patterns (uniform, transpose, bit-complement,
// hotspot) — the standard NoC evaluation workloads, used by unit tests and
// ablation benches alongside the application profiles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace htnoc::traffic {

/// Maps a source core to a destination core, possibly randomly.
class Pattern {
 public:
  virtual ~Pattern() = default;
  [[nodiscard]] virtual NodeId pick_dest(NodeId src, Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class UniformRandom final : public Pattern {
 public:
  explicit UniformRandom(int num_cores) : num_cores_(num_cores) {}
  [[nodiscard]] NodeId pick_dest(NodeId src, Rng& rng) const override {
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(num_cores_)));
    } while (d == src);
    return d;
  }
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  int num_cores_;
};

/// dest = bit-reversed transpose of the source index.
class Transpose final : public Pattern {
 public:
  explicit Transpose(const MeshGeometry& geom) : geom_(geom) {}
  [[nodiscard]] NodeId pick_dest(NodeId src, Rng&) const override {
    const RouterId r = geom_.router_of_core(src);
    const MeshCoord c = geom_.coord_of(r);
    const RouterId tr = geom_.router_at({c.y, c.x});
    return geom_.core_at(tr, geom_.local_slot_of_core(src));
  }
  [[nodiscard]] std::string name() const override { return "transpose"; }

 private:
  MeshGeometry geom_;
};

class BitComplement final : public Pattern {
 public:
  explicit BitComplement(int num_cores) : num_cores_(num_cores) {}
  [[nodiscard]] NodeId pick_dest(NodeId src, Rng&) const override {
    return static_cast<NodeId>((num_cores_ - 1) - src);
  }
  [[nodiscard]] std::string name() const override { return "bit_complement"; }

 private:
  int num_cores_;
};

/// A fraction of traffic goes to a fixed hotspot core; the rest is uniform.
class Hotspot final : public Pattern {
 public:
  Hotspot(int num_cores, NodeId hotspot, double fraction)
      : uniform_(num_cores), hotspot_(hotspot), fraction_(fraction) {
    HTNOC_EXPECT(fraction >= 0.0 && fraction <= 1.0);
  }
  [[nodiscard]] NodeId pick_dest(NodeId src, Rng& rng) const override {
    if (src != hotspot_ && rng.next_bool(fraction_)) return hotspot_;
    return uniform_.pick_dest(src, rng);
  }
  [[nodiscard]] std::string name() const override { return "hotspot"; }

 private:
  UniformRandom uniform_;
  NodeId hotspot_;
  double fraction_;
};

}  // namespace htnoc::traffic
