// Closed-loop traffic generation: per-core Bernoulli injection from an
// application model, software backlogs in front of the NIs (a full
// injection port stalls the "application", it does not lose work), and
// request->reply dependencies.
//
// Multiple generators can drive one network (e.g. the two TDM domains of
// Fig. 12a); deliveries are fanned out through a DeliveryDispatcher.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "traffic/app_profile.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::traffic {

/// Fans one network delivery callback out to many listeners.
class DeliveryDispatcher {
 public:
  using Callback = NetworkInterface::DeliveryCallback;

  /// Install this dispatcher as the network's delivery callback.
  void install(Network& net) {
    net.set_delivery_callback([this](Cycle now, const PacketInfo& info,
                                     Cycle latency) {
      for (auto& cb : listeners_) cb(now, info, latency);
    });
  }
  void add_listener(Callback cb) { listeners_.push_back(std::move(cb)); }

 private:
  std::vector<Callback> listeners_;
};

class TrafficGenerator {
 public:
  struct Params {
    std::uint64_t seed = 1;
    /// Stop generating new requests after this many (0 = unbounded).
    std::uint64_t total_requests = 0;
    bool enable_replies = true;
    TdmDomain domain = TdmDomain::kD1;
    /// Cores this generator injects from; empty = every core.
    std::vector<NodeId> cores;
    /// Optional transform applied to every generated packet before
    /// injection — e.g. Fort-NoCs-style e2e obfuscation of the memory
    /// address (the Fig. 11a baseline).
    std::function<void(PacketInfo&)> packet_transform;
  };

  struct Stats {
    std::uint64_t requests_generated = 0;
    std::uint64_t replies_generated = 0;
    std::uint64_t packets_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t flits_injected = 0;
    std::uint64_t backlog_peak = 0;
    std::uint64_t latency_sum = 0;
    std::uint64_t migrations = 0;
    Cycle latency_max = 0;

    [[nodiscard]] double avg_latency() const {
      return packets_delivered == 0
                 ? 0.0
                 : static_cast<double>(latency_sum) /
                       static_cast<double>(packets_delivered);
    }
  };

  TrafficGenerator(Network& net, AppTrafficModel model, Params params,
                   DeliveryDispatcher& dispatcher);

  /// Generate and inject for one cycle. Call before Network::step().
  void step();

  /// Re-queue a packet that the network dropped (link-disable purge); it
  /// will be re-injected with a fresh id as end-to-end recovery. No-op for
  /// ids this generator does not own.
  void requeue(PacketId id);

  /// OS-level process migration (the paper's suggested complement to L-Ob):
  /// future packets of this application treat router `to` as the hotspot
  /// instead of `from`. Packets already generated keep their destinations —
  /// migration is not retroactive.
  void migrate_hotspot(RouterId from, RouterId to) {
    model_.migrate_hotspot(from, to);
    ++stats_.migrations;
  }

  /// All generated requests injected AND every tracked packet delivered.
  [[nodiscard]] bool done() const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return outstanding_;
  }
  [[nodiscard]] std::size_t backlog_size() const;

 private:
  friend struct htnoc::verify::StateCodec;

  void on_delivery(Cycle now, const PacketInfo& info, Cycle latency);
  void enqueue_packet(PacketInfo info);
  [[nodiscard]] PacketInfo make_request(NodeId src);

  Network& net_;
  AppTrafficModel model_;
  Params params_;
  Rng rng_;
  std::vector<NodeId> cores_;
  /// Software backlog per core (index into cores_).
  std::vector<std::deque<PacketInfo>> backlog_;
  std::map<PacketId, PacketInfo> mine_;  ///< Outstanding packets we injected.
  std::uint64_t outstanding_ = 0;
  Stats stats_;
};

}  // namespace htnoc::traffic
