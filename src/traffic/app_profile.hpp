// Parametric application traffic profiles standing in for the paper's
// PARSEC/SPLASH-2 traces (see DESIGN.md, substitution table).
//
// Figure 1 of the paper shows the shape that matters: Blackscholes-class
// workloads concentrate traffic around one or two "primary" routers
// (router 0 in the paper), with demand decaying as hop distance from the
// primary grows. The profile reproduces that shape with a gravity model:
//
//   weight(src, dest) ∝ hot(dest_router) * exp(-hops(src,dest)/decay)
//
// Each named profile tunes the hotspot set, decay length, injection rate,
// packet lengths and reply fraction to give the four benchmarks of Fig. 10
// distinct traffic personalities.
#pragma once

#include <string>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace htnoc::verify {
struct StateCodec;  // snapshot/restore (src/verify/snapshot.cpp)
}

namespace htnoc::traffic {

struct AppProfile {
  std::string name;
  /// Packet-injection probability per core per cycle.
  double injection_rate = 0.02;
  /// Primary routers and their attraction weights; all other routers get
  /// `background_weight`.
  std::vector<std::pair<RouterId, double>> hotspots;
  double background_weight = 1.0;
  /// Hop-distance decay length of the gravity model.
  double distance_decay = 2.0;
  /// Fraction of delivered requests that trigger a reply packet.
  double reply_fraction = 0.6;
  int min_len = 1;
  int max_len = 5;
  /// Memory-address base per application (so mem-targeted trojans key on
  /// the application's footprint).
  std::uint32_t mem_base = 0x1000'0000;
  std::uint32_t mem_span = 0x0100'0000;
};

/// Sampler that draws (dest, length, mem) tuples from a profile for a mesh.
class AppTrafficModel {
 public:
  AppTrafficModel(const MeshGeometry& geom, AppProfile profile);

  [[nodiscard]] const AppProfile& profile() const noexcept { return profile_; }

  /// Draw a destination core for a packet injected at `src`.
  [[nodiscard]] NodeId pick_dest(NodeId src, Rng& rng) const;
  [[nodiscard]] int pick_length(Rng& rng) const;
  [[nodiscard]] std::uint32_t pick_mem(Rng& rng) const;

  /// Normalized router-to-router demand matrix (for Fig. 1a and tests).
  [[nodiscard]] std::vector<std::vector<double>> demand_matrix() const;

  /// Model the OS migrating the processes pinned to router `from` onto
  /// router `to` (the paper's suggested complement: "invoking the OS to
  /// migrate processes from one network region to another"). Hotspot
  /// weight moves with them; sampling tables are rebuilt.
  void migrate_hotspot(RouterId from, RouterId to);

 private:
  friend struct htnoc::verify::StateCodec;

  void rebuild_tables();
  [[nodiscard]] double hot_weight(RouterId r) const;

  MeshGeometry geom_;
  AppProfile profile_;
  // cum_weights_[src_router]: cumulative dest-core weights for sampling.
  std::vector<std::vector<double>> cum_weights_;
};

/// The four benchmark personalities evaluated in Fig. 10 of the paper.
[[nodiscard]] AppProfile blackscholes_profile();
[[nodiscard]] AppProfile facesim_profile();
[[nodiscard]] AppProfile ferret_profile();
[[nodiscard]] AppProfile fft_profile();
[[nodiscard]] std::vector<AppProfile> all_profiles();
[[nodiscard]] AppProfile profile_by_name(const std::string& name);

}  // namespace htnoc::traffic
