#include "traffic/trace.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace htnoc::traffic {

namespace {

const char* class_token(PacketClass c) {
  switch (c) {
    case PacketClass::kRequest: return "req";
    case PacketClass::kReply: return "rep";
    case PacketClass::kData: return "data";
  }
  return "?";
}

PacketClass class_from_token(const std::string& t) {
  if (t == "req") return PacketClass::kRequest;
  if (t == "rep") return PacketClass::kReply;
  if (t == "data") return PacketClass::kData;
  throw ContractViolation("trace: bad packet class token '" + t + "'");
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& os) : os_(os) {
  os_ << "# htnoc-trace v1\n";
}

void TraceWriter::append(const TraceRecord& r) {
  os_ << r.cycle << ' ' << r.src_core << ' ' << r.dest_core << ' ' << r.length
      << ' ' << std::hex << r.mem_addr << std::dec << ' '
      << class_token(r.pclass) << ' ' << (r.domain == TdmDomain::kD1 ? 1 : 2)
      << '\n';
  ++count_;
}

std::vector<TraceRecord> read_trace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  Cycle last_cycle = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceRecord r;
    std::uint64_t src = 0;
    std::uint64_t dest = 0;
    std::string cls;
    int domain = 0;
    if (!(ls >> r.cycle >> src >> dest >> r.length >> std::hex >> r.mem_addr >>
          std::dec >> cls >> domain)) {
      throw ContractViolation("trace: malformed line '" + line + "'");
    }
    HTNOC_EXPECT(r.cycle >= last_cycle);
    last_cycle = r.cycle;
    r.src_core = static_cast<NodeId>(src);
    r.dest_core = static_cast<NodeId>(dest);
    r.pclass = class_from_token(cls);
    HTNOC_EXPECT(domain == 1 || domain == 2);
    r.domain = domain == 1 ? TdmDomain::kD1 : TdmDomain::kD2;
    HTNOC_EXPECT(r.length >= 1 && r.length <= 15);
    out.push_back(r);
  }
  return out;
}

void TraceRecorder::write(std::ostream& os) const {
  TraceWriter w(os);
  for (const auto& r : records_) w.append(r);
}

}  // namespace htnoc::traffic
