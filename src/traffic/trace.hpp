// Deterministic traffic traces: record every injection of a run and replay
// it bit-identically later — the repo's stand-in for the paper's captured
// PARSEC/SPLASH-2 traces. The format is a line-oriented text file:
//
//   # htnoc-trace v1
//   <cycle> <src_core> <dest_core> <length> <mem_addr_hex> <class> <domain>
#pragma once

#include <cstdint>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/flit.hpp"

namespace htnoc::traffic {

struct TraceRecord {
  Cycle cycle = 0;
  NodeId src_core = 0;
  NodeId dest_core = 0;
  int length = 1;
  std::uint32_t mem_addr = 0;
  PacketClass pclass = PacketClass::kRequest;
  TdmDomain domain = TdmDomain::kD1;

  [[nodiscard]] bool operator==(const TraceRecord&) const = default;
};

/// Serialize records to a stream.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& os);
  void append(const TraceRecord& rec);
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::ostream& os_;
  std::uint64_t count_ = 0;
};

/// Parse a trace stream. Throws ContractViolation on malformed input.
[[nodiscard]] std::vector<TraceRecord> read_trace(std::istream& is);

/// Capture a run's injections by observing a network (wrap try_inject).
class TraceRecorder {
 public:
  void record(Cycle cycle, const PacketInfo& info) {
    TraceRecord r;
    r.cycle = cycle;
    r.src_core = info.src_core;
    r.dest_core = info.dest_core;
    r.length = info.length;
    r.mem_addr = info.mem_addr;
    r.pclass = info.pclass;
    r.domain = info.domain;
    records_.push_back(r);
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void write(std::ostream& os) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace htnoc::traffic
