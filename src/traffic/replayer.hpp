// Replays a recorded trace against a network, with the same software-
// backlog semantics as TrafficGenerator (a full injection port delays, it
// does not drop). Completion tracking mirrors the generator so Fig. 10
// completion-time experiments can run from traces.
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "noc/network.hpp"
#include "traffic/generator.hpp"
#include "traffic/trace.hpp"

namespace htnoc::traffic {

class TraceReplayer {
 public:
  struct Stats {
    std::uint64_t packets_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t latency_sum = 0;
  };

  TraceReplayer(Network& net, std::vector<TraceRecord> trace,
                DeliveryDispatcher& dispatcher)
      : net_(net), trace_(std::move(trace)) {
    dispatcher.add_listener(
        [this](Cycle now, const PacketInfo& info, Cycle lat) {
          on_delivery(now, info, lat);
        });
  }

  /// Inject everything scheduled up to the current network cycle.
  void step() {
    const Cycle now = net_.now();
    while (next_ < trace_.size() && trace_[next_].cycle <= now) {
      backlog_.push_back(trace_[next_]);
      ++next_;
    }
    while (!backlog_.empty()) {
      const TraceRecord& r = backlog_.front();
      PacketInfo info;
      info.id = net_.next_packet_id();
      info.src_core = r.src_core;
      info.dest_core = r.dest_core;
      info.src_router = net_.geometry().router_of_core(r.src_core);
      info.dest_router = net_.geometry().router_of_core(r.dest_core);
      info.mem_addr = r.mem_addr;
      info.pclass = r.pclass;
      info.domain = r.domain;
      info.length = r.length;
      info.inject_cycle = now;
      std::vector<std::uint64_t> payload(
          static_cast<std::size_t>(r.length > 0 ? r.length - 1 : 0),
          info.id * 0x9e3779b97f4a7c15ULL);
      if (!net_.try_inject(info, payload)) break;
      mine_.insert(info.id);
      ++outstanding_;
      ++stats_.packets_injected;
      backlog_.pop_front();
    }
  }

  [[nodiscard]] bool done() const {
    return next_ == trace_.size() && backlog_.empty() && outstanding_ == 0;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_delivery(Cycle, const PacketInfo& info, Cycle latency) {
    const auto it = mine_.find(info.id);
    if (it == mine_.end()) return;
    mine_.erase(it);
    --outstanding_;
    ++stats_.packets_delivered;
    stats_.latency_sum += latency;
  }

  Network& net_;
  std::vector<TraceRecord> trace_;
  std::size_t next_ = 0;
  std::deque<TraceRecord> backlog_;
  std::set<PacketId> mine_;
  std::uint64_t outstanding_ = 0;
  Stats stats_;
};

}  // namespace htnoc::traffic
