#include "traffic/generator.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace htnoc::traffic {

TrafficGenerator::TrafficGenerator(Network& net, AppTrafficModel model,
                                   Params params, DeliveryDispatcher& dispatcher)
    : net_(net),
      model_(std::move(model)),
      params_(std::move(params)),
      rng_(params_.seed) {
  if (params_.cores.empty()) {
    for (NodeId c = 0; c < net_.geometry().num_cores(); ++c) cores_.push_back(c);
  } else {
    cores_ = params_.cores;
  }
  backlog_.resize(cores_.size());
  dispatcher.add_listener([this](Cycle now, const PacketInfo& info, Cycle lat) {
    on_delivery(now, info, lat);
  });
}

PacketInfo TrafficGenerator::make_request(NodeId src) {
  PacketInfo info;
  info.id = net_.next_packet_id();
  info.src_core = src;
  info.dest_core = model_.pick_dest(src, rng_);
  info.src_router = net_.geometry().router_of_core(info.src_core);
  info.dest_router = net_.geometry().router_of_core(info.dest_core);
  info.mem_addr = model_.pick_mem(rng_);
  info.pclass = PacketClass::kRequest;
  info.domain = params_.domain;
  info.length = model_.pick_length(rng_);
  if (params_.packet_transform) params_.packet_transform(info);
  return info;
}

void TrafficGenerator::enqueue_packet(PacketInfo info) {
  const auto it = std::find(cores_.begin(), cores_.end(), info.src_core);
  HTNOC_EXPECT(it != cores_.end());
  backlog_[static_cast<std::size_t>(it - cores_.begin())].push_back(
      std::move(info));
}

void TrafficGenerator::step() {
  const double rate = model_.profile().injection_rate;
  std::uint64_t backlog_total = 0;

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const NodeId core = cores_[i];
    // Generate this cycle's new work.
    if ((params_.total_requests == 0 ||
         stats_.requests_generated < params_.total_requests) &&
        rng_.next_bool(rate)) {
      backlog_[i].push_back(make_request(core));
      ++stats_.requests_generated;
    }
    // Drain the backlog head into the NI while it accepts.
    while (!backlog_[i].empty()) {
      PacketInfo& info = backlog_[i].front();
      // Payload words: deterministic in the packet id so traces replay
      // bit-identically.
      std::vector<std::uint64_t> payload(
          static_cast<std::size_t>(std::max(0, info.length - 1)));
      for (std::size_t k = 0; k < payload.size(); ++k) {
        payload[k] = info.id * 0x9e3779b97f4a7c15ULL + k;
      }
      info.inject_cycle = net_.now();
      if (!net_.try_inject(info, payload)) break;  // injection port full
      mine_.emplace(info.id, info);
      ++outstanding_;
      ++stats_.packets_injected;
      stats_.flits_injected += static_cast<std::uint64_t>(info.length);
      backlog_[i].pop_front();
    }
    backlog_total += backlog_[i].size();
  }
  stats_.backlog_peak = std::max(stats_.backlog_peak, backlog_total);
}

void TrafficGenerator::requeue(PacketId id) {
  const auto it = mine_.find(id);
  if (it == mine_.end()) return;
  PacketInfo fresh = it->second;
  mine_.erase(it);
  HTNOC_EXPECT(outstanding_ > 0);
  --outstanding_;
  fresh.id = net_.next_packet_id();
  enqueue_packet(std::move(fresh));
}

void TrafficGenerator::on_delivery(Cycle now, const PacketInfo& info,
                                   Cycle latency) {
  const auto it = mine_.find(info.id);
  if (it == mine_.end()) return;
  mine_.erase(it);
  HTNOC_EXPECT(outstanding_ > 0);
  --outstanding_;
  ++stats_.packets_delivered;
  stats_.latency_sum += latency;
  stats_.latency_max = std::max(stats_.latency_max, latency);
  (void)now;

  if (params_.enable_replies && info.pclass == PacketClass::kRequest &&
      rng_.next_bool(model_.profile().reply_fraction)) {
    PacketInfo reply;
    reply.id = net_.next_packet_id();
    reply.src_core = info.dest_core;
    reply.dest_core = info.src_core;
    reply.src_router = info.dest_router;
    reply.dest_router = info.src_router;
    reply.mem_addr = info.mem_addr;
    reply.pclass = PacketClass::kReply;
    reply.domain = info.domain;
    reply.length = model_.pick_length(rng_);
    if (params_.packet_transform) params_.packet_transform(reply);
    ++stats_.replies_generated;
    // Replies originate at the original destination core, which may not be
    // one of this generator's cores; give them their own backlog entry on
    // that core if we own it, otherwise inject best-effort immediately.
    const auto cit = std::find(cores_.begin(), cores_.end(), reply.src_core);
    if (cit != cores_.end()) {
      backlog_[static_cast<std::size_t>(cit - cores_.begin())].push_back(reply);
    } else {
      reply.inject_cycle = net_.now();
      if (net_.try_inject(reply, std::vector<std::uint64_t>(
                                     static_cast<std::size_t>(reply.length - 1),
                                     reply.id))) {
        mine_.emplace(reply.id, reply);
        ++outstanding_;
        ++stats_.packets_injected;
      }
      return;
    }
  }
}

bool TrafficGenerator::done() const {
  if (params_.total_requests == 0) return false;
  if (stats_.requests_generated < params_.total_requests) return false;
  if (outstanding_ != 0) return false;
  return backlog_size() == 0;
}

std::size_t TrafficGenerator::backlog_size() const {
  std::size_t n = 0;
  for (const auto& b : backlog_) n += b.size();
  return n;
}

}  // namespace htnoc::traffic
