#include "ecc/secded_reference.hpp"

namespace htnoc::ecc {

SecdedReference::SecdedReference() {
  unsigned data_bit = 0;
  for (unsigned pos = 1; pos < kCodeBits && data_bit < kDataBits; ++pos) {
    if (Secded::is_check_position(pos)) continue;
    data_position_[data_bit] = static_cast<std::uint8_t>(pos);
    for (unsigned k = 0; k < 7; ++k) {
      if (pos & (1u << k)) parity_data_mask_[k] |= (std::uint64_t{1} << data_bit);
    }
    ++data_bit;
  }
  HTNOC_ENSURE(data_bit == kDataBits);
}

Codeword72 SecdedReference::encode(std::uint64_t data) const noexcept {
  Codeword72 cw;
  // Scatter data bits to their codeword positions.
  for (unsigned i = 0; i < kDataBits; ++i) {
    if ((data >> i) & 1) cw.set(data_position_[i], true);
  }
  // Hamming parity bits at positions 2^k.
  for (unsigned k = 0; k < 7; ++k) {
    cw.set(1u << k, parity64(data & parity_data_mask_[k]));
  }
  // Overall parity at position 0 makes total codeword parity even.
  cw.set(0, (cw.popcount() & 1) != 0);
  return cw;
}

std::uint64_t SecdedReference::extract_data(const Codeword72& cw) const noexcept {
  std::uint64_t data = 0;
  for (unsigned i = 0; i < kDataBits; ++i) {
    if (cw.get(data_position_[i])) data |= (std::uint64_t{1} << i);
  }
  return data;
}

DecodeResult SecdedReference::decode(Codeword72 received) const noexcept {
  DecodeResult r;

  // Syndrome: XOR of positions (1..71) whose bit is set, recomputed against
  // the stored parity bits. Equivalent to re-encoding and comparing, but we
  // compute it directly from the received word.
  unsigned syndrome = 0;
  for (unsigned pos = 1; pos < kCodeBits; ++pos) {
    if (received.get(pos)) syndrome ^= pos;
  }
  const bool parity_bad = (received.popcount() & 1) != 0;

  r.syndrome = static_cast<std::uint8_t>(syndrome & 0x7F);
  r.overall_parity_bad = parity_bad;

  if (syndrome == 0 && !parity_bad) {
    r.status = DecodeStatus::kClean;
    r.data = extract_data(received);
    return r;
  }
  if (syndrome == 0 && parity_bad) {
    // The overall parity bit itself flipped; data is intact.
    received.flip(0);
    r.status = DecodeStatus::kCorrectedSingle;
    r.corrected_position = 0;
    r.data = extract_data(received);
    return r;
  }
  if (parity_bad) {
    // Odd number of errors; for a single error the syndrome is its position.
    if (syndrome < kCodeBits) {
      received.flip(syndrome);
      r.status = DecodeStatus::kCorrectedSingle;
      r.corrected_position = syndrome;
      r.data = extract_data(received);
      return r;
    }
    // Odd-weight multi-bit error pointing outside the codeword: data is
    // unrecoverable, so no caller may consume it.
    r.status = DecodeStatus::kDetectedMultiple;
    return r;
  }
  // Even number of errors (>=2) with non-zero syndrome: detected, not
  // correctable. This is the TASP-exploited outcome.
  r.status = DecodeStatus::kDetectedDouble;
  return r;
}

const SecdedReference& secded_reference() {
  static const SecdedReference instance;
  return instance;
}

}  // namespace htnoc::ecc
