#include "ecc/codec.hpp"

namespace htnoc::ecc {

const LinkCodec& codec_for(EccScheme scheme) {
  static const SecdedCodec secded_codec;
  static const ParityCodec parity_codec;
  static const NoneCodec none_codec;
  switch (scheme) {
    case EccScheme::kParity: return parity_codec;
    case EccScheme::kNone: return none_codec;
    case EccScheme::kSecded:
    default: return secded_codec;
  }
}

}  // namespace htnoc::ecc
