// The link-codec abstraction: every link guards its 64 data bits with one
// of three error-control schemes. The paper's platform is SECDED and its
// trojan is designed against it ("we assume the attacker has knowledge of
// the ECC between links"); the parity and raw variants quantify how much
// that knowledge matters:
//
//   scheme  | 1-bit fault        | 2-bit fault            | 3-bit fault
//   --------+--------------------+------------------------+----------------
//   secded  | corrected inline   | detected -> retransmit | mis-corrected/detected
//   parity  | detected -> retx   | SILENT corruption      | detected -> retx
//   none    | silent corruption  | silent corruption      | silent corruption
//
// A TASP tuned for SECDED (2-bit payload) therefore corrupts parity links
// silently instead of DoSing them, while a single-bit payload — harmless
// against SECDED — already mounts the full DoS against parity.
//
// Two entry points share the scheme implementations:
//   * `CodecDispatch` — the hot path. An enum tag resolved once at
//     construction (input/output units bind it to their NocConfig's
//     scheme); encode/decode inline with no virtual call per phit.
//   * `LinkCodec` / `codec_for()` — the polymorphic view kept for on-link
//     inspectors (the trojan's comparator, the snooper) and tests, where a
//     per-phit virtual call is not on the simulator's critical path.
#pragma once

#include <string>

#include "common/config.hpp"
#include "ecc/secded.hpp"

namespace htnoc::ecc {

// --- scheme implementations (shared by both dispatch styles) ---

/// Single even-parity bit at wire 64; data on wires 0..63.
[[nodiscard]] inline Codeword72 parity_encode(std::uint64_t data) noexcept {
  Codeword72 cw;
  cw.lo = data;
  cw.set(64, parity64(data));
  return cw;
}

[[nodiscard]] inline DecodeResult parity_decode(const Codeword72& received) noexcept {
  DecodeResult r;
  const bool bad = parity64(received.lo) != received.get(64);
  r.overall_parity_bad = bad;
  // Odd-weight errors are detected but never correctable; even-weight
  // errors (the SECDED-tuned trojan's 2-bit payload!) pass silently. On
  // detection the data is unrecoverable and stays zero.
  r.status = bad ? DecodeStatus::kDetectedMultiple : DecodeStatus::kClean;
  if (!bad) r.data = received.lo;
  return r;
}

/// Raw wires: no detection at all.
[[nodiscard]] inline Codeword72 none_encode(std::uint64_t data) noexcept {
  Codeword72 cw;
  cw.lo = data;
  return cw;
}

[[nodiscard]] inline DecodeResult none_decode(const Codeword72& received) noexcept {
  DecodeResult r;
  r.data = received.lo;
  r.status = DecodeStatus::kClean;
  return r;
}

/// Wires actually carrying signal under a scheme (faults on unused wires
/// are invisible).
[[nodiscard]] constexpr unsigned used_wires_for(EccScheme scheme) noexcept {
  switch (scheme) {
    case EccScheme::kParity: return 65;
    case EccScheme::kNone: return 64;
    case EccScheme::kSecded: break;
  }
  return 72;
}

/// Non-virtual link codec, resolved once at construction. The common
/// (secded) case inlines straight into the table-driven `Secded` codec; the
/// enum switch on a fixed member predicts perfectly.
class CodecDispatch {
 public:
  explicit CodecDispatch(EccScheme scheme) noexcept
      : scheme_(scheme), secded_(&secded()) {}

  [[nodiscard]] Codeword72 encode(std::uint64_t data) const noexcept {
    switch (scheme_) {
      case EccScheme::kParity: return parity_encode(data);
      case EccScheme::kNone: return none_encode(data);
      case EccScheme::kSecded: break;
    }
    return secded_->encode(data);
  }

  [[nodiscard]] DecodeResult decode(const Codeword72& received) const noexcept {
    switch (scheme_) {
      case EccScheme::kParity: return parity_decode(received);
      case EccScheme::kNone: return none_decode(received);
      case EccScheme::kSecded: break;
    }
    return secded_->decode(received);
  }

  /// Batched lane forms: resolve the scheme once for `n` contiguous lanes.
  /// Bit-identical per lane to the scalar calls (the SECDED batch shares
  /// the scalar outcome resolver); used by the router's per-cycle gather of
  /// all ports' staged codewords (docs/PERFORMANCE.md).
  void encode_batch(const std::uint64_t* data, Codeword72* out,
                    std::size_t n) const noexcept {
    switch (scheme_) {
      case EccScheme::kParity:
        for (std::size_t i = 0; i < n; ++i) out[i] = parity_encode(data[i]);
        return;
      case EccScheme::kNone:
        for (std::size_t i = 0; i < n; ++i) out[i] = none_encode(data[i]);
        return;
      case EccScheme::kSecded: break;
    }
    secded_->encode_batch(data, out, n);
  }

  void decode_batch(const Codeword72* received, DecodeResult* out,
                    std::size_t n) const noexcept {
    switch (scheme_) {
      case EccScheme::kParity:
        for (std::size_t i = 0; i < n; ++i) out[i] = parity_decode(received[i]);
        return;
      case EccScheme::kNone:
        for (std::size_t i = 0; i < n; ++i) out[i] = none_decode(received[i]);
        return;
      case EccScheme::kSecded: break;
    }
    secded_->decode_batch(received, out, n);
  }

  /// Read the data bits without checking (what an on-link observer taps).
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const noexcept {
    switch (scheme_) {
      case EccScheme::kParity:
      case EccScheme::kNone:
        return cw.lo;
      case EccScheme::kSecded: break;
    }
    return secded_->extract_data(cw);
  }

  [[nodiscard]] unsigned used_wires() const noexcept {
    return used_wires_for(scheme_);
  }
  [[nodiscard]] EccScheme scheme() const noexcept { return scheme_; }

 private:
  EccScheme scheme_;
  const Secded* secded_;  ///< Cached shared instance (never null).
};

// --- polymorphic view (inspectors, tests) ---

/// Interface every link code implements. Stateless; one shared instance per
/// scheme.
class LinkCodec {
 public:
  virtual ~LinkCodec() = default;
  [[nodiscard]] virtual Codeword72 encode(std::uint64_t data) const = 0;
  [[nodiscard]] virtual DecodeResult decode(Codeword72 received) const = 0;
  /// Read the data bits without checking (what an on-link observer taps).
  [[nodiscard]] virtual std::uint64_t extract_data(const Codeword72& cw) const = 0;
  /// Wires actually carrying signal under this scheme (faults on unused
  /// wires are invisible).
  [[nodiscard]] virtual unsigned used_wires() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// SECDED adapter over the shared Hamming(72,64) tables.
class SecdedCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    return secded().encode(data);
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    return secded().decode(received);
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return secded().extract_data(cw);
  }
  [[nodiscard]] unsigned used_wires() const override {
    return used_wires_for(EccScheme::kSecded);
  }
  [[nodiscard]] std::string name() const override { return "secded"; }
};

class ParityCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    return parity_encode(data);
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    return parity_decode(received);
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return cw.lo;
  }
  [[nodiscard]] unsigned used_wires() const override {
    return used_wires_for(EccScheme::kParity);
  }
  [[nodiscard]] std::string name() const override { return "parity"; }
};

class NoneCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    return none_encode(data);
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    return none_decode(received);
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return cw.lo;
  }
  [[nodiscard]] unsigned used_wires() const override {
    return used_wires_for(EccScheme::kNone);
  }
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Shared codec instance for a scheme.
[[nodiscard]] const LinkCodec& codec_for(EccScheme scheme);

}  // namespace htnoc::ecc
