// The link-codec abstraction: every link guards its 64 data bits with one
// of three error-control schemes. The paper's platform is SECDED and its
// trojan is designed against it ("we assume the attacker has knowledge of
// the ECC between links"); the parity and raw variants quantify how much
// that knowledge matters:
//
//   scheme  | 1-bit fault        | 2-bit fault            | 3-bit fault
//   --------+--------------------+------------------------+----------------
//   secded  | corrected inline   | detected -> retransmit | mis-corrected/detected
//   parity  | detected -> retx   | SILENT corruption      | detected -> retx
//   none    | silent corruption  | silent corruption      | silent corruption
//
// A TASP tuned for SECDED (2-bit payload) therefore corrupts parity links
// silently instead of DoSing them, while a single-bit payload — harmless
// against SECDED — already mounts the full DoS against parity.
#pragma once

#include <string>

#include "common/config.hpp"
#include "ecc/secded.hpp"

namespace htnoc::ecc {

/// Interface every link code implements. Stateless; one shared instance per
/// scheme.
class LinkCodec {
 public:
  virtual ~LinkCodec() = default;
  [[nodiscard]] virtual Codeword72 encode(std::uint64_t data) const = 0;
  [[nodiscard]] virtual DecodeResult decode(Codeword72 received) const = 0;
  /// Read the data bits without checking (what an on-link observer taps).
  [[nodiscard]] virtual std::uint64_t extract_data(const Codeword72& cw) const = 0;
  /// Wires actually carrying signal under this scheme (faults on unused
  /// wires are invisible).
  [[nodiscard]] virtual unsigned used_wires() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// SECDED adapter over the shared Hamming(72,64) tables.
class SecdedCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    return secded().encode(data);
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    return secded().decode(received);
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return secded().extract_data(cw);
  }
  [[nodiscard]] unsigned used_wires() const override { return 72; }
  [[nodiscard]] std::string name() const override { return "secded"; }
};

/// Single even-parity bit at wire 64; data on wires 0..63.
class ParityCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    Codeword72 cw;
    cw.lo = data;
    cw.set(64, parity64(data));
    return cw;
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    DecodeResult r;
    r.data = received.lo;
    const bool bad = parity64(received.lo) != received.get(64);
    r.overall_parity_bad = bad;
    // Odd-weight errors are detected but never correctable; even-weight
    // errors (the SECDED-tuned trojan's 2-bit payload!) pass silently.
    r.status = bad ? DecodeStatus::kDetectedMultiple : DecodeStatus::kClean;
    return r;
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return cw.lo;
  }
  [[nodiscard]] unsigned used_wires() const override { return 65; }
  [[nodiscard]] std::string name() const override { return "parity"; }
};

/// Raw wires: no detection at all.
class NoneCodec final : public LinkCodec {
 public:
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const override {
    Codeword72 cw;
    cw.lo = data;
    return cw;
  }
  [[nodiscard]] DecodeResult decode(Codeword72 received) const override {
    DecodeResult r;
    r.data = received.lo;
    r.status = DecodeStatus::kClean;
    return r;
  }
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const override {
    return cw.lo;
  }
  [[nodiscard]] unsigned used_wires() const override { return 64; }
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Shared codec instance for a scheme.
[[nodiscard]] const LinkCodec& codec_for(EccScheme scheme);

}  // namespace htnoc::ecc
