// Hamming(72,64) SECDED — the switch-to-switch error-control code the paper
// assumes on every link: single-error correction, double-error detection.
//
// Codeword layout (72 bits): positions 1..71 form an extended Hamming code
// with parity bits at the power-of-two positions {1,2,4,8,16,32,64} and the
// 64 data bits filling the remaining positions in ascending order. Position
// 0 holds the overall parity over positions 1..71.
//
// Decode outcome table (S = Hamming syndrome, P = overall parity check):
//   S == 0, P ok     -> clean
//   S != 0, P bad    -> single error at position S, corrected
//   S == 0, P bad    -> error in the overall parity bit itself, corrected
//   S != 0, P ok     -> double error: DETECTED, NOT correctable -> retransmit
//
// The TASP trojan exploits exactly the last row: it always flips two bits so
// the receiver detects but cannot correct, forcing retransmission forever.
//
// This is the fast, table-driven implementation running on every phit of
// every hop: syndrome computation is byte-sliced through nine 256-entry
// XOR-of-positions tables, data moves between word and codeword through a
// handful of precomputed shift/mask segments, and the overall parity check
// is a single popcount. The original bit-serial implementation survives as
// `SecdedReference` (secded_reference.hpp) and serves as the oracle in the
// exhaustive equivalence tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/bits.hpp"

namespace htnoc::ecc {

/// Result category of a SECDED decode.
enum class DecodeStatus : std::uint8_t {
  kClean,             ///< No error detected.
  kCorrectedSingle,   ///< One bit flipped; corrected in place.
  kDetectedDouble,    ///< Two-bit (even) error; uncorrectable -> retransmit.
  kDetectedMultiple,  ///< >2-bit odd-weight error decoded to an invalid
                      ///< position; uncorrectable -> retransmit.
};

[[nodiscard]] constexpr bool needs_retransmission(DecodeStatus s) noexcept {
  return s == DecodeStatus::kDetectedDouble ||
         s == DecodeStatus::kDetectedMultiple;
}

/// Full decode report, including the raw syndrome the threat detector logs.
struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  /// Recovered data word. Zeroed on uncorrectable outcomes (kDetectedDouble
  /// and kDetectedMultiple) so no caller consumes garbage silently — check
  /// has_valid_data() before reading.
  std::uint64_t data = 0;
  std::uint8_t syndrome = 0;     ///< 7-bit Hamming syndrome (position of error).
  bool overall_parity_bad = false;
  /// Corrected codeword position, when status == kCorrectedSingle.
  std::optional<unsigned> corrected_position;

  /// True when `data` holds the (possibly corrected) transmitted word.
  [[nodiscard]] constexpr bool has_valid_data() const noexcept {
    return !needs_retransmission(status);
  }
};

/// Stateless encoder/decoder for the (72,64) SECDED code.
///
/// All lookup tables are built once at construction; encode/decode are pure
/// and lock-free, so one instance can be shared by every router.
class Secded {
 public:
  static constexpr unsigned kDataBits = 64;
  static constexpr unsigned kCodeBits = 72;
  static constexpr unsigned kCheckBits = 8;  // 7 Hamming + 1 overall parity

  Secded();

  /// Encode a 64-bit data word into a 72-bit codeword.
  [[nodiscard]] Codeword72 encode(std::uint64_t data) const noexcept;

  /// Decode (and correct when possible) a received codeword.
  [[nodiscard]] DecodeResult decode(Codeword72 received) const noexcept;

  /// Batched lane forms (docs/PERFORMANCE.md): encode/decode `n` contiguous
  /// lanes in one call. Each lane's result is bit-identical to the scalar
  /// call — decode_batch shares the scalar outcome resolver and merely
  /// splits the work into a hot table pass (syndrome + parity over all
  /// lanes) and a cold branchy resolve pass.
  void encode_batch(const std::uint64_t* data, Codeword72* out,
                    std::size_t n) const noexcept;
  void decode_batch(const Codeword72* received, DecodeResult* out,
                    std::size_t n) const noexcept;

  /// Extract the data bits of a codeword without any checking. Used by
  /// on-link inspectors (the trojan) which read wires directly.
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const noexcept;

  /// Codeword position occupied by data bit i (i in [0,64)).
  [[nodiscard]] unsigned position_of_data_bit(unsigned i) const {
    HTNOC_EXPECT(i < kDataBits);
    return data_position_[i];
  }

  /// True when the codeword position holds a check (parity) bit.
  [[nodiscard]] static constexpr bool is_check_position(unsigned pos) noexcept {
    return pos == 0 || (pos & (pos - 1)) == 0;  // 0 and powers of two
  }

 private:
  /// Outcome resolution shared by decode and decode_batch: classify the
  /// (syndrome, overall-parity) pair and correct/extract accordingly.
  [[nodiscard]] DecodeResult resolve(Codeword72 received, unsigned syndrome,
                                     bool parity_bad) const noexcept;

  /// One maximal run of data bits occupying consecutive `lo` codeword
  /// positions: data bits [first, first+width) live at lo bits
  /// [first+shift, first+shift+width). The layout yields five such runs
  /// (between the power-of-two parity positions below 64); the single run
  /// above position 64 (data bits 57..63 at hi bits 1..7) is hard-wired in
  /// encode/extract_data and verified at construction.
  struct Segment {
    std::uint64_t data_mask = 0;  ///< Mask over the data word.
    unsigned shift = 0;           ///< Left shift from data bit to lo bit.
  };
  static constexpr unsigned kLoSegments = 5;
  /// Data bits carried in `hi` (positions 65..71): the top seven.
  static constexpr unsigned kHiDataShift = 57;

  /// Byte-sliced syndrome tables: syndrome_lut_[b][v] is the XOR of the
  /// codeword positions {8b + i : bit i set in v}. XORing nine lookups
  /// (eight lo bytes + the hi byte) yields the Hamming syndrome; position 0
  /// contributes nothing by construction (0 ^ x == x).
  [[nodiscard]] unsigned syndrome_of(std::uint64_t lo,
                                     std::uint8_t hi) const noexcept {
    unsigned s = 0;
    for (unsigned b = 0; b < 8; ++b) {
      s ^= syndrome_lut_[b][(lo >> (8 * b)) & 0xFF];
    }
    return s ^ syndrome_lut_[8][hi];
  }

  // data_position_[i]: codeword position of data bit i.
  std::array<std::uint8_t, kDataBits> data_position_{};
  std::array<Segment, kLoSegments> segments_{};
  std::array<std::array<std::uint8_t, 256>, 9> syndrome_lut_{};
};

/// Shared immutable instance (construction is cheap but there is no reason
/// to rebuild the tables per router).
const Secded& secded();

}  // namespace htnoc::ecc
