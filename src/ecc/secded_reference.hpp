// Bit-serial reference implementation of the Hamming(72,64) SECDED code.
//
// This is the original position-by-position implementation: encode scatters
// the 64 data bits one at a time, decode walks all 72 codeword positions to
// accumulate the syndrome. It is deliberately slow and obviously correct —
// the fast byte-sliced `Secded` codec is validated against it bit-for-bit
// (status, syndrome, corrected position, data) by the equivalence tests,
// and it stays available as the oracle for future codec work.
//
// Semantics are identical to `Secded`, including zeroing `DecodeResult.data`
// on uncorrectable outcomes.
#pragma once

#include <array>
#include <cstdint>

#include "ecc/secded.hpp"

namespace htnoc::ecc {

/// Reference (bit-loop) encoder/decoder for the (72,64) SECDED code.
class SecdedReference {
 public:
  static constexpr unsigned kDataBits = Secded::kDataBits;
  static constexpr unsigned kCodeBits = Secded::kCodeBits;

  SecdedReference();

  [[nodiscard]] Codeword72 encode(std::uint64_t data) const noexcept;
  [[nodiscard]] DecodeResult decode(Codeword72 received) const noexcept;
  [[nodiscard]] std::uint64_t extract_data(const Codeword72& cw) const noexcept;

  /// Codeword position occupied by data bit i (i in [0,64)).
  [[nodiscard]] unsigned position_of_data_bit(unsigned i) const {
    HTNOC_EXPECT(i < kDataBits);
    return data_position_[i];
  }

 private:
  // data_position_[i]: codeword position of data bit i.
  std::array<std::uint8_t, kDataBits> data_position_{};
  // For parity bit k (k in [0,7)): mask over the 64 data bits whose codeword
  // position has bit k set. Parity bit value = XOR of those data bits.
  std::array<std::uint64_t, 7> parity_data_mask_{};
};

/// Shared immutable reference instance (tests and benchmarks only).
const SecdedReference& secded_reference();

}  // namespace htnoc::ecc
