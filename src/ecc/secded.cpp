#include "ecc/secded.hpp"

namespace htnoc::ecc {

Secded::Secded() {
  // Data-bit placement: ascending codeword positions, skipping the check
  // positions. Identical to SecdedReference by construction.
  unsigned data_bit = 0;
  for (unsigned pos = 1; pos < kCodeBits && data_bit < kDataBits; ++pos) {
    if (is_check_position(pos)) continue;
    data_position_[data_bit] = static_cast<std::uint8_t>(pos);
    ++data_bit;
  }
  HTNOC_ENSURE(data_bit == kDataBits);

  // Derive the scatter/gather segments: maximal runs of data bits whose
  // codeword positions below 64 are consecutive (constant shift).
  unsigned nseg = 0;
  unsigned i = 0;
  while (i < kDataBits && data_position_[i] < 64) {
    const unsigned shift = data_position_[i] - i;
    const unsigned start = i;
    while (i < kDataBits && data_position_[i] < 64 &&
           data_position_[i] - i == shift) {
      ++i;
    }
    HTNOC_ENSURE(nseg < kLoSegments);
    const unsigned width = i - start;
    segments_[nseg].shift = shift;
    segments_[nseg].data_mask = ((std::uint64_t{1} << width) - 1) << start;
    ++nseg;
  }
  HTNOC_ENSURE(nseg == kLoSegments);
  // The remaining data bits (57..63) occupy hi positions 65..71, one run.
  HTNOC_ENSURE(i == kHiDataShift);
  for (unsigned j = i; j < kDataBits; ++j) {
    HTNOC_ENSURE(data_position_[j] == j + kCheckBits);
  }

  // Byte-sliced syndrome tables: entry [b][v] = XOR of codeword positions
  // {8b + k : bit k set in v}. Position 0 (the overall parity bit) XORs in
  // zero, so it never perturbs the syndrome.
  for (unsigned b = 0; b < 9; ++b) {
    for (unsigned v = 0; v < 256; ++v) {
      unsigned x = 0;
      for (unsigned k = 0; k < 8; ++k) {
        const unsigned pos = 8 * b + k;
        if (((v >> k) & 1) != 0 && pos < kCodeBits) x ^= pos;
      }
      syndrome_lut_[b][v] = static_cast<std::uint8_t>(x);
    }
  }
}

Codeword72 Secded::encode(std::uint64_t data) const noexcept {
  // Scatter the data word into its codeword positions (check bits zero).
  std::uint64_t lo = 0;
  for (const Segment& s : segments_) lo |= (data & s.data_mask) << s.shift;
  auto hi = static_cast<std::uint8_t>((data >> kHiDataShift) << 1);

  // With the check positions still zero, the syndrome of the scattered word
  // is the XOR of the positions of all set data bits — exactly the value
  // each Hamming parity bit at position 2^k must take (bit k of it).
  const unsigned syn = syndrome_of(lo, hi);
  lo |= static_cast<std::uint64_t>(syn & 1) << 1;
  lo |= static_cast<std::uint64_t>((syn >> 1) & 1) << 2;
  lo |= static_cast<std::uint64_t>((syn >> 2) & 1) << 4;
  lo |= static_cast<std::uint64_t>((syn >> 3) & 1) << 8;
  lo |= static_cast<std::uint64_t>((syn >> 4) & 1) << 16;
  lo |= static_cast<std::uint64_t>((syn >> 5) & 1) << 32;
  hi |= static_cast<std::uint8_t>((syn >> 6) & 1);

  // Overall parity at position 0 makes total codeword parity even.
  lo |= static_cast<std::uint64_t>(
      (std::popcount(lo) + std::popcount(static_cast<unsigned>(hi))) & 1);

  Codeword72 cw;
  cw.lo = lo;
  cw.hi = hi;
  return cw;
}

std::uint64_t Secded::extract_data(const Codeword72& cw) const noexcept {
  std::uint64_t data = 0;
  for (const Segment& s : segments_) data |= (cw.lo >> s.shift) & s.data_mask;
  return data | (static_cast<std::uint64_t>(cw.hi >> 1) << kHiDataShift);
}

DecodeResult Secded::decode(Codeword72 received) const noexcept {
  const unsigned syndrome = syndrome_of(received.lo, received.hi);
  const bool parity_bad =
      ((std::popcount(received.lo) +
        std::popcount(static_cast<unsigned>(received.hi))) &
       1) != 0;
  return resolve(received, syndrome, parity_bad);
}

DecodeResult Secded::resolve(Codeword72 received, unsigned syndrome,
                             bool parity_bad) const noexcept {
  DecodeResult r;
  r.syndrome = static_cast<std::uint8_t>(syndrome);
  r.overall_parity_bad = parity_bad;

  if (!parity_bad) {
    if (syndrome == 0) {
      r.status = DecodeStatus::kClean;
      r.data = extract_data(received);
      return r;
    }
    // Even number of errors (>=2) with non-zero syndrome: detected, not
    // correctable — the TASP-exploited outcome. Data stays zero.
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  // Odd number of errors; for a single error the syndrome is its position
  // (zero when the overall parity bit itself flipped — data is intact
  // either way, and flipping position 0 does not touch the data bits).
  if (syndrome == 0) {
    r.status = DecodeStatus::kCorrectedSingle;
    r.corrected_position = 0;
    r.data = extract_data(received);
    return r;
  }
  if (syndrome < kCodeBits) {
    received.flip(syndrome);
    r.status = DecodeStatus::kCorrectedSingle;
    r.corrected_position = syndrome;
    r.data = extract_data(received);
    return r;
  }
  // Odd-weight multi-bit error pointing outside the codeword. Data stays
  // zero: it is unrecoverable and no caller may consume it.
  r.status = DecodeStatus::kDetectedMultiple;
  return r;
}

void Secded::encode_batch(const std::uint64_t* data, Codeword72* out,
                          std::size_t n) const noexcept {
  // Encode is branch-free straight-line code; batching is the lane loop
  // itself (segments and LUTs stay resident across lanes).
  for (std::size_t i = 0; i < n; ++i) out[i] = encode(data[i]);
}

void Secded::decode_batch(const Codeword72* received, DecodeResult* out,
                          std::size_t n) const noexcept {
  constexpr std::size_t kChunk = 16;
  unsigned syn[kChunk];
  bool bad[kChunk];
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t m = n - base < kChunk ? n - base : kChunk;
    // Hot pass: byte-sliced syndrome tables + popcount parity, all lanes.
    for (std::size_t i = 0; i < m; ++i) {
      const Codeword72& cw = received[base + i];
      syn[i] = syndrome_of(cw.lo, cw.hi);
      bad[i] = ((std::popcount(cw.lo) +
                 std::popcount(static_cast<unsigned>(cw.hi))) &
                1) != 0;
    }
    // Cold pass: per-lane outcome resolution (branches only here).
    for (std::size_t i = 0; i < m; ++i) {
      out[base + i] = resolve(received[base + i], syn[i], bad[i]);
    }
  }
}

const Secded& secded() {
  static const Secded instance;
  return instance;
}

}  // namespace htnoc::ecc
