#!/usr/bin/env bash
# Mutation self-test driver: for each deliberately-buggy behavior that can be
# compiled into the NoC substrate (see src/verify/mutation.hpp), build the
# tree with that mutation enabled and prove the invariant auditor catches it
# — via the targeted scenario and via the randomized fault campaign with a
# repro spec. A mutation that survives means an auditor blind spot.
#
#   scripts/mutation_check.sh [MUTATION...]   # default: all eight
set -euo pipefail
cd "$(dirname "$0")/.."

MUTATIONS=("$@")
if [ ${#MUTATIONS[@]} -eq 0 ]; then
  MUTATIONS=(DROP_ACK PURGE_SLOT_LEAK SKIP_CREDIT EXTRA_CREDIT
             DOUBLE_DELIVER LOSE_FLIT PHANTOM_FLIT BLIND_SATURATION)
fi

JOBS=${JOBS:-$(nproc)}
failed=()

for m in "${MUTATIONS[@]}"; do
  build="build-mutation-${m,,}"
  echo "=== mutation $m ==="
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release -DHTNOC_MUTATION="$m" \
    > /dev/null 2>&1 || { cmake -B "$build" -S . -DHTNOC_MUTATION="$m"; exit 1; }
  cmake --build "$build" -j "$JOBS" --target test_invariant_auditor \
    > "$build/build.log" 2>&1 || { tail -50 "$build/build.log"; exit 1; }
  if "./$build/tests/test_invariant_auditor" \
      --gtest_filter='MutationSelfTest.*' > "$build/run.log" 2>&1; then
    echo "    caught: yes"
  else
    echo "    caught: NO — auditor blind spot"
    tail -40 "$build/run.log"
    failed+=("$m")
  fi
done

if [ ${#failed[@]} -gt 0 ]; then
  echo "UNDETECTED MUTATIONS: ${failed[*]}"
  exit 1
fi
echo "all ${#MUTATIONS[@]} mutations detected"
