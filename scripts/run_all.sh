#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure in one go.
#
#   scripts/run_all.sh [--jobs N] [--trace DIR] [build-dir]
#
# --jobs N controls build/ctest parallelism AND the sweep-based bench
# drivers (exported as HTNOC_JOBS; results are bit-identical for any N).
# --trace DIR additionally captures an event trace of each bench scenario
# and writes per-scenario forensic timelines plus Perfetto-loadable JSON
# into DIR (see docs/OBSERVABILITY.md).
# Outputs: <build-dir>, test_output.txt, bench_output.txt in the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
jobs="$(nproc)"
trace_dir=""

while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      jobs="$2"
      shift 2
      ;;
    --jobs=*)
      jobs="${1#*=}"
      shift
      ;;
    --trace)
      trace_dir="$2"
      shift 2
      ;;
    --trace=*)
      trace_dir="${1#*=}"
      shift
      ;;
    -h|--help)
      sed -n '2,11p' "$0"
      exit 0
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done

export HTNOC_JOBS="$jobs"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"

ctest --test-dir "$build_dir" -j "$jobs" 2>&1 | tee "$repo_root/test_output.txt"

{
  for b in "$build_dir"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

if [ -n "$trace_dir" ]; then
  mkdir -p "$trace_dir"
  echo "===== tracing bench scenarios into $trace_dir ====="
  # The Fig. 11 cascade, end to end, with a full forensic timeline.
  "$build_dir/examples/attack_forensics" "$trace_dir"
  # One traced replay per mitigation x attack grid point of the paper's
  # core comparison; each gets a .trace.{bin,json} + .timeline.txt.
  "$build_dir/examples/sweep_cli" \
    --modes none,lob,reroute --attacks single \
    --replicates 1 --cycles 3000 --jobs "$jobs" \
    --trace "$trace_dir" >/dev/null
  echo "forensic timelines:"
  ls "$trace_dir"/*.timeline.txt
fi

echo "done: test_output.txt and bench_output.txt written to $repo_root"
