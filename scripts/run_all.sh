#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure in one go.
#
#   scripts/run_all.sh [--jobs N] [build-dir]
#
# --jobs N controls build/ctest parallelism AND the sweep-based bench
# drivers (exported as HTNOC_JOBS; results are bit-identical for any N).
# Outputs: <build-dir>, test_output.txt, bench_output.txt in the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
jobs="$(nproc)"

while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      jobs="$2"
      shift 2
      ;;
    --jobs=*)
      jobs="${1#*=}"
      shift
      ;;
    -h|--help)
      sed -n '2,8p' "$0"
      exit 0
      ;;
    *)
      build_dir="$1"
      shift
      ;;
  esac
done

export HTNOC_JOBS="$jobs"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir" -j "$jobs"

ctest --test-dir "$build_dir" -j "$jobs" 2>&1 | tee "$repo_root/test_output.txt"

{
  for b in "$build_dir"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

echo "done: test_output.txt and bench_output.txt written to $repo_root"
