#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure in one go.
#
#   scripts/run_all.sh [build-dir]
#
# Outputs: <build-dir>, test_output.txt, bench_output.txt in the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" -j "$(nproc)" 2>&1 | tee "$repo_root/test_output.txt"

{
  for b in "$build_dir"/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

echo "done: test_output.txt and bench_output.txt written to $repo_root"
