#!/usr/bin/env python3
"""Regenerate the fabric-size scaling table in docs/SCALING.md section 5.

Reads the JSON emitted by bench_topology_scaling and rewrites the block
between the `topo-scaling:begin` / `topo-scaling:end` markers in place,
so the published curve always matches a real measurement:

    cmake --build build -j --target bench_topology_scaling
    ./build/bench/bench_topology_scaling --benchmark_min_time=0.25 \
        --benchmark_out=topo_scaling.json --benchmark_out_format=json
    python3 scripts/refresh_scaling_table.py topo_scaling.json

ROADMAP item 1(d) asks for this to be rerun on a >= 8-core host; the
environment note in the generated block records how many cores the
measurement host actually had, so an under-provisioned rerun is visible
in the doc rather than silently presented as a speedup curve.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

BEGIN = "<!-- topo-scaling:begin"
END = "<!-- topo-scaling:end -->"
THREADS = (1, 2, 4, 8)
# (row label, benchmark prefix, size arg, router count)
ROWS = (
    ("mesh 8×8", "BM_MeshScaling", 8, 64),
    ("mesh 16×16", "BM_MeshScaling", 16, 256),
    ("mesh 32×32", "BM_MeshScaling", 32, 1024),
    ("mesh 64×64", "BM_MeshScaling", 64, 4096),
    ("torus 16×16", "BM_TorusScaling", 16, 256),
)


def thousands(x: float) -> str:
    """Integral cycles/sec with a space as the thousands separator."""
    return f"{int(round(x)):,}".replace(",", " ")


def load_rates(path: pathlib.Path) -> tuple[dict[str, float], dict]:
    """name -> items_per_second (median aggregate when present)."""
    doc = json.loads(path.read_text())
    rates: dict[str, float] = {}
    have_medians = any(
        b.get("aggregate_name") == "median" for b in doc["benchmarks"]
    )
    for bench in doc["benchmarks"]:
        if have_medians:
            if bench.get("aggregate_name") != "median":
                continue
            name = bench["run_name"]
        else:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
        if "items_per_second" in bench:
            # "BM_MeshScaling/8/1/process_time/real_time" -> first three
            # segments; the modifier suffixes vary with benchmark flags.
            rates["/".join(name.split("/")[:3])] = bench["items_per_second"]
    return rates, doc.get("context", {})


def build_block(rates: dict[str, float], context: dict,
                min_time: str) -> str:
    cpus = context.get("num_cpus", "?")
    note = (
        f"Measured curve ({cpus}-core host, min_time {min_time} s;\n"
        f"`BM_MeshScaling/k/threads`, cycles/sec):"
    )
    lines = [
        BEGIN + " (scripts/refresh_scaling_table.py rewrites this block) -->",
        note,
        "",
        "| fabric | routers | 1 thread | 2 | 4 | 8 |",
        "|--------|--------:|---------:|--:|--:|--:|",
    ]
    missing = []
    for label, prefix, size, routers in ROWS:
        cells = []
        for t in THREADS:
            name = f"{prefix}/{size}/{t}"
            if name not in rates:
                missing.append(name)
                cells.append("—")
            else:
                cells.append(thousands(rates[name]))
        lines.append(f"| {label} | {routers} | " + " | ".join(cells) + " |")
    lines.append(END)
    if missing:
        sys.exit(
            "refresh_scaling_table: benchmarks missing from the JSON: "
            + ", ".join(missing)
        )
    return "\n".join(lines)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("json_path", type=pathlib.Path,
                    help="bench_topology_scaling --benchmark_out file")
    ap.add_argument("--doc", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent
                    / "docs" / "SCALING.md")
    ap.add_argument("--min-time", default="0.25",
                    help="value to record in the environment note")
    ap.add_argument("--check", action="store_true",
                    help="fail instead of rewriting when the doc is stale")
    args = ap.parse_args()

    rates, context = load_rates(args.json_path)
    block = build_block(rates, context, args.min_time)

    text = args.doc.read_text()
    pattern = re.compile(
        re.escape(BEGIN) + r".*?" + re.escape(END), re.DOTALL
    )
    if not pattern.search(text):
        sys.exit(f"refresh_scaling_table: no marker block in {args.doc}")
    updated = pattern.sub(lambda _: block, text, count=1)
    if args.check:
        if updated != text:
            sys.exit(f"{args.doc} is stale; rerun without --check")
        print(f"{args.doc}: up to date")
        return
    if updated != text:
        args.doc.write_text(updated)
        print(f"{args.doc}: table refreshed")
    else:
        print(f"{args.doc}: already up to date")


if __name__ == "__main__":
    main()
