#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a google-benchmark JSON report (run with --benchmark_repetitions)
against the checked-in bench/baseline.json. Raw nanoseconds are useless
across runner generations, so every median is normalized by the median of
an anchor benchmark (the bit-serial SECDED reference decoder) measured in
the same run: the gate checks *ratios*, which track algorithmic regressions
and ignore machine speed.

Two kinds of checks:
  * tolerance gates — each gated benchmark's normalized median must stay
    within +/-TOLERANCE of the baseline value;
  * hard ratio gates — machine-independent invariants of the implementation
    (e.g. the table-driven SECDED codec must beat the bit-serial oracle),
    enforced with generous margins so they only fire on real regressions.

Refresh the baseline after an intentional performance change with:

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    ./build/bench/bench_microbench --benchmark_repetitions=5 \
        --benchmark_format=json --benchmark_out=bench.json
    python3 scripts/check_bench_regression.py bench.json --update

and commit the updated bench/baseline.json with a note on what changed.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "bench" / "baseline.json"

ANCHOR = "BM_SecdedReferenceDecodeClean"
TOLERANCE = 0.25

# Benchmarks whose normalized medians are gated against the baseline. The
# obfuscation/TASP kernels are tracked in the baseline for visibility but not
# gated: they sit in the single-digit-ns range where run-to-run noise on
# shared CI runners exceeds any plausible regression.
GATED = [
    "BM_SecdedEncode",
    "BM_SecdedDecodeClean",
    "BM_SecdedDecodeSingleError",
    "BM_SecdedDecodeDoubleError",
    "BM_NetworkStepIdle",
    "BM_NetworkStepIdleFullStepping",
    "BM_NetworkStepLoaded",
    "BM_NetworkStepLoaded16x16",
    "BM_NetworkStepUnderAttack",
    "BM_NetworkStepUnderAttackTraced",
    "BM_NetworkStepUnderAttack64x64",
    "BM_NetworkStepAudited",
    "BM_CampaignWarmupRerun",
    "BM_CampaignSnapshotFork",
]

# (numerator, denominator, max ratio, rationale)
HARD_RATIO_GATES = [
    ("BM_SecdedEncode", "BM_SecdedReferenceEncode", 0.60,
     "table-driven SECDED encode must clearly beat the bit-serial oracle"),
    ("BM_SecdedDecodeClean", "BM_SecdedReferenceDecodeClean", 0.60,
     "table-driven SECDED decode must clearly beat the bit-serial oracle"),
    ("BM_NetworkStepIdle", "BM_NetworkStepIdleFullStepping", 0.80,
     "active-set stepping must win on an idle network"),
    ("BM_NetworkStepAudited", "BM_NetworkStepLoaded", 25.0,
     "per-cycle invariant audit may not explode the step cost"),
    ("BM_CampaignSnapshotFork", "BM_CampaignWarmupRerun", 0.60,
     "a snapshot-forked scenario must clearly beat re-running the warmup"),
]

# (benchmark, max normalized median, rationale) — absolute ceilings against
# frozen pre-change constants, for invariants that compare the current
# implementation with one that no longer exists in the tree. The constant is
# the old implementation's normalized median measured on the same anchor
# (machine-independent); the ceiling bakes in the required improvement.
HARD_NORMALIZED_CEILINGS = [
    ("BM_NetworkStepLoaded16x16", 6064 * 0.85,
     "the SoA flit-pool datapath must hold a >=15% loaded-step improvement "
     "over the pre-pool deque/map implementation (pre-SoA normalized median "
     "6064; docs/PERFORMANCE.md section 6)"),
]


TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_medians(report_path):
    """Median real_time per benchmark from a repetitions run, in ns.

    Benchmarks declare their display unit (`->Unit(kMicrosecond)` etc.);
    everything is converted to nanoseconds here so normalization mixes
    units correctly.
    """
    with open(report_path) as f:
        report = json.load(f)
    medians = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate" and \
                entry.get("aggregate_name") == "median":
            scale = TIME_UNIT_NS[entry.get("time_unit", "ns")]
            medians[entry["run_name"]] = float(entry["real_time"]) * scale
    if not medians:
        sys.exit(f"error: no median aggregates in {report_path}; run the "
                 "benchmark with --benchmark_repetitions=5")
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="google-benchmark JSON output")
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this report")
    args = parser.parse_args()

    medians = load_medians(args.report)
    if ANCHOR not in medians:
        sys.exit(f"error: anchor benchmark {ANCHOR} missing from report")
    anchor = medians[ANCHOR]
    normalized = {name: t / anchor for name, t in sorted(medians.items())
                  if name != ANCHOR}

    if args.update:
        baseline = {
            "anchor_benchmark": ANCHOR,
            "tolerance": args.tolerance,
            "normalized_medians": {k: round(v, 4)
                                   for k, v in normalized.items()},
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return

    with open(args.baseline) as f:
        baseline = json.load(f)
    if baseline.get("anchor_benchmark") != ANCHOR:
        sys.exit("error: baseline anchor mismatch; regenerate with --update")
    base = baseline["normalized_medians"]
    tolerance = baseline.get("tolerance", args.tolerance)

    failures = []
    print(f"{'benchmark':42} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name in GATED:
        if name not in normalized:
            failures.append(f"{name}: missing from report")
            continue
        if name not in base:
            failures.append(f"{name}: missing from baseline "
                            "(refresh with --update)")
            continue
        cur, ref = normalized[name], base[name]
        delta = cur / ref - 1.0
        flag = ""
        if abs(delta) > tolerance:
            flag = " REGRESSION" if delta > 0 else " (faster: refresh baseline)"
            if delta > 0:
                failures.append(
                    f"{name}: normalized median {cur:.4f} vs baseline "
                    f"{ref:.4f} ({delta:+.1%}, tolerance ±{tolerance:.0%})")
        print(f"{name:42} {ref:10.4f} {cur:10.4f} {delta:+8.1%}{flag}")

    for num, den, max_ratio, why in HARD_RATIO_GATES:
        if num not in medians or den not in medians:
            failures.append(f"hard gate {num}/{den}: benchmark missing")
            continue
        ratio = medians[num] / medians[den]
        ok = ratio <= max_ratio
        print(f"hard gate: {num}/{den} = {ratio:.3f} "
              f"(max {max_ratio}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"hard gate {num}/{den} = {ratio:.3f} > "
                            f"{max_ratio}: {why}")

    for name, ceiling, why in HARD_NORMALIZED_CEILINGS:
        if name not in normalized:
            failures.append(f"hard ceiling {name}: benchmark missing")
            continue
        cur = normalized[name]
        ok = cur <= ceiling
        print(f"hard ceiling: {name} = {cur:.1f} "
              f"(max {ceiling:.1f}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"hard ceiling {name} = {cur:.1f} > "
                            f"{ceiling:.1f}: {why}")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        print("\nIf the change is an intentional trade-off, refresh the "
              "baseline (see the header of this script) and justify it in "
              "the PR description.", file=sys.stderr)
        sys.exit(1)
    print("\nbenchmark regression gate passed")


if __name__ == "__main__":
    main()
