#!/usr/bin/env python3
"""Plot Figure 11 (DoS progression) from bench_fig11_dos_progression output.

Usage:
    build/bench/bench_fig11_dos_progression | scripts/plot_fig11.py out.png

Optional tooling: requires matplotlib; the bench's stdout tables are the
primary artifact and this script only prettifies them.
"""
import sys


def parse(stream):
    """Split the bench output into named CSV sections."""
    sections = {}
    label = None
    for line in stream:
        line = line.strip()
        if line.startswith("--- "):
            label = line.strip("- ").strip()
            sections[label] = []
        elif label and "," in line and not line.startswith(("#", "cycle")):
            try:
                sections[label].append([int(x) for x in line.split(",")])
            except ValueError:
                pass
    return {k: v for k, v in sections.items() if v}


def main():
    out = sys.argv[1] if len(sys.argv) > 1 else "fig11.png"
    sections = parse(sys.stdin)
    if not sections:
        sys.exit("no CSV sections found on stdin — pipe the bench output in")

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(2, len(sections), figsize=(6 * len(sections), 7),
                             squeeze=False)
    for col, (label, rows) in enumerate(sections.items()):
        t = [r[0] for r in rows]
        ax = axes[0][col]
        ax.plot(t, [r[1] for r in rows], label="input port")
        ax.plot(t, [r[2] for r in rows], label="output port")
        ax.plot(t, [r[3] for r in rows], label="injection port")
        ax.set_title(label, fontsize=9)
        ax.set_ylabel("buffer utilization (flits)")
        ax.legend(fontsize=8)

        ax2 = axes[1][col]
        ax2.plot(t, [r[4] for r in rows], label="all cores full")
        ax2.plot(t, [r[5] for r in rows], label="> 50% cores full")
        ax2.plot(t, [r[6] for r in rows], label="≥1 port blocked")
        ax2.set_xlabel("cycles after TASP enabled")
        ax2.set_ylabel("routers (of 16)")
        ax2.legend(fontsize=8)

    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
