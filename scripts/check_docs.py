#!/usr/bin/env python3
"""Documentation checks, run as the `docs` CI job.

Two independent passes:

  --links      Every intra-repo markdown link ([text](path) and bare
               relative <path> links) in every tracked .md file must point
               at a file or directory that exists. External URLs and pure
               #anchors are ignored; a path#anchor link is checked for the
               path only.

  --commands   Every fenced shell command in docs/REPRODUCING.md that
               invokes a built binary (./build/...) must name a binary the
               build actually produced, and each such binary must survive a
               `--help` smoke run. Demo binaries whose source does not parse
               --help (they take positional output paths) are checked for
               existence only — running them with --help would execute the
               demo and litter the tree.

Exits nonzero with a per-problem listing on any failure, so a doc rename or
a CLI flag change cannot silently strand the reproduction guide.

Usage:
  python3 scripts/check_docs.py --links
  python3 scripts/check_docs.py --commands --build-dir build
  python3 scripts/check_docs.py --links --commands --build-dir build
"""

import argparse
import pathlib
import re
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — target captured up to the closing paren (no nesting in
# our docs). Images (![alt](path)) match too, which is what we want.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^```")
# A documented invocation of a built artifact, wherever it sits on the line
# (pipelines, `cd build && ...`, line continuations).
BUILD_CMD = re.compile(r"\./(?:build/)?(bench|examples|tests)/([A-Za-z0-9_]+)")


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "*.md"],
        cwd=REPO, capture_output=True, text=True, check=True)
    return [REPO / p for p in out.stdout.split()]


def check_links():
    problems = []
    for md in tracked_markdown():
        in_fence = False
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue  # code blocks may mention paths that runs create
            for target in MD_LINK.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                path = target.split("#", 1)[0]
                if not path:  # pure anchor
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO)}:{lineno}: broken link "
                        f"'{target}' -> {resolved.relative_to(REPO) if resolved.is_relative_to(REPO) else resolved}")
    return problems


def fenced_commands(md_path):
    """Yield (lineno, line) for lines inside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(md_path.read_text().splitlines(), 1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            yield lineno, line


def parses_help(kind, name):
    """bench/tests binaries get flag parsing from google-benchmark/gtest;
    an example CLI gets the smoke run only if its source handles --help."""
    if kind in ("bench", "tests"):
        return True
    src = REPO / "examples" / f"{name}.cpp"
    return src.exists() and "--help" in src.read_text()


def check_commands(build_dir):
    reproducing = REPO / "docs" / "REPRODUCING.md"
    if not reproducing.exists():
        return [f"missing {reproducing.relative_to(REPO)}"]
    build = (REPO / build_dir).resolve()
    problems = []
    seen = {}
    for lineno, line in fenced_commands(reproducing):
        for kind, name in BUILD_CMD.findall(line):
            seen.setdefault((kind, name), lineno)
    if not seen:
        return [f"{reproducing.relative_to(REPO)}: no ./build/... commands "
                "found in fenced blocks (guide gutted?)"]
    for (kind, name), lineno in sorted(seen.items()):
        binary = build / kind / name
        if not binary.is_file():
            problems.append(
                f"docs/REPRODUCING.md:{lineno}: documented binary "
                f"{kind}/{name} was not built at {binary}")
            continue
        if not parses_help(kind, name):
            continue
        try:
            proc = subprocess.run(
                [str(binary), "--help"], capture_output=True, timeout=60)
        except subprocess.TimeoutExpired:
            problems.append(f"{kind}/{name}: --help hung (>60s)")
            continue
        if proc.returncode != 0:
            problems.append(
                f"{kind}/{name}: --help exited {proc.returncode}:\n"
                f"{proc.stderr.decode(errors='replace')[:500]}")
    print(f"checked {len(seen)} documented binaries")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--links", action="store_true")
    ap.add_argument("--commands", action="store_true")
    ap.add_argument("--build-dir", default="build")
    args = ap.parse_args()
    if not (args.links or args.commands):
        ap.error("nothing to do: pass --links and/or --commands")

    problems = []
    if args.links:
        problems += check_links()
    if args.commands:
        problems += check_commands(args.build_dir)

    if problems:
        print(f"\n{len(problems)} problem(s):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
