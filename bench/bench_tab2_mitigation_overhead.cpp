// Table II — area, power and timing of the proposed mitigation hardware
// (threat source detector + L-Ob s2s obfuscation blocks), and its overhead
// relative to the router micro-architecture. Paper: +2% area, +6% power.
#include <cstdio>

#include "bench_common.hpp"
#include "power/blocks.hpp"

int main() {
  using namespace htnoc;
  using namespace htnoc::power;
  bench::print_header("Table II", "mitigation hardware overhead");

  const NocConfig cfg;
  const MitigationOverhead m = mitigation_overhead(cfg);
  const RouterBreakdown rb = router_breakdown(cfg);

  std::printf("\n%-28s %10s %10s %10s %8s\n", "block", "area(um2)", "dyn(uW)",
              "leak(nW)", "t(ns)");
  const auto row = [](const char* name, const BlockEstimate& b) {
    std::printf("%-28s %10.2f %10.2f %10.2f %8.3f\n", name, b.area_um2(),
                b.dynamic_uw(), b.leakage_nw(), b.delay_ns());
  };
  row("threat source detector", m.threat_detector);
  row("L-Ob (per output port)", m.lob_per_port);
  row("total per router (det+4xL-Ob)", m.total_per_router);
  row("router (for reference)", rb.total);

  std::printf("\noverhead vs router:  area %+.2f%%   power %+.2f%%\n",
              100.0 * m.area_fraction_of_router,
              100.0 * m.power_fraction_of_router);
  std::printf("paper reports:       area +2%%      power +6%%\n");
  std::printf("\nboth blocks meet the 2 GHz timing budget: %s\n\n",
              m.threat_detector.meets_timing() && m.lob_per_port.meets_timing()
                  ? "yes"
                  : "NO");
  return 0;
}
