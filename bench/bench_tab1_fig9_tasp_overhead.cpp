// Table I and Figure 9 — synthesized area, dynamic power, leakage and
// timing of each TASP target-comparator variant (Full, Dest, Src, Dest_Src,
// Mem, VC), our gate-equivalent model side by side with the paper's
// Synopsys DC / TSMC 40 nm numbers.
#include <cstdio>

#include "bench_common.hpp"
#include "power/blocks.hpp"

int main() {
  using namespace htnoc;
  using namespace htnoc::power;
  bench::print_header("Table I / Figure 9",
                      "TASP target variants: area, power, timing");

  std::printf("\n%-10s %6s | %10s %10s | %10s %10s | %10s %10s | %8s %8s\n",
              "variant", "bits", "area(um2)", "paper", "dyn(uW)", "paper",
              "leak(nW)", "paper", "t(ns)", "paper");
  for (const TaspReference& ref : tasp_paper_reference()) {
    const BlockEstimate b = tasp_block(ref.kind);
    std::printf("%-10s %6u | %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f "
                "| %8.3f %8.2f\n",
                trojan::to_string(ref.kind).c_str(),
                trojan::target_width(ref.kind), b.area_um2(), ref.area_um2,
                b.dynamic_uw(), ref.dynamic_uw, b.leakage_nw(), ref.leakage_nw,
                b.delay_ns(), ref.timing_ns);
  }

  // The thread/process-id comparator the paper lists but does not
  // synthesize — model-only row for completeness.
  {
    const BlockEstimate b = tasp_block(trojan::TargetKind::kThread);
    std::printf("%-10s %6u | %10.2f %10s | %10.2f %10s | %10.2f %10s "
                "| %8.3f %8s\n",
                "thread", trojan::target_width(trojan::TargetKind::kThread),
                b.area_um2(), "n/a", b.dynamic_uw(), "n/a", b.leakage_nw(),
                "n/a", b.delay_ns(), "n/a");
  }

  std::printf("\nFigure 9 (area vs target selection):\n");
  for (const TaspReference& ref : tasp_paper_reference()) {
    const BlockEstimate b = tasp_block(ref.kind);
    const int bar = static_cast<int>(b.area_um2());
    std::printf("  %-10s %6.1f um2 |", trojan::to_string(ref.kind).c_str(),
                b.area_um2());
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  // Payload-counter width trade-off (the Y parameter of Fig. 3).
  std::printf("\nPayload counter width (Y) vs area, dest variant:\n");
  for (const int y : {2, 4, 8, 16, 32}) {
    const BlockEstimate b = tasp_block(trojan::TargetKind::kDest, y);
    std::printf("  Y=%-3d  %7.2f um2  %7.2f nW leakage\n", y, b.area_um2(),
                b.leakage_nw());
  }

  std::printf("\nAll variants fit the 0.5 ns cycle at 2 GHz: ");
  bool all_meet = true;
  for (const TaspReference& ref : tasp_paper_reference()) {
    all_meet = all_meet && tasp_block(ref.kind).meets_timing();
  }
  std::printf("%s\n\n", all_meet ? "yes" : "NO");
  return all_meet ? 0 : 1;
}
