// Ablation studies for the design choices DESIGN.md calls out:
//   1. TASP payload-counter width Y: disguise quality (time to trojan
//      classification) vs area.
//   2. TASP duty cycle (min_gap): attack abruptness vs stealth.
//   3. L-Ob escalation threshold (faults on one flit before obfuscating):
//      mitigation latency vs false-positive obfuscation.
//   4. L-Ob per-flow success log on/off: cycles spent escalating.
//   5. Retransmission-buffer placement (paper Fig. 5): shared output pool
//      vs per-VC slots — the DoS blast radius differs sharply.
//   6. Routing under attack+mitigation: deterministic x-y vs West-First
//      adaptive.
//   7. Detection baselines: our syndrome-based threat detector vs the
//      related-work runtime latency auditor (NOCS'15 [13]).
//   8. Link ECC scheme x trojan payload: the attacker-knows-the-ECC
//      assumption (Sec. III-B) — the same trojan flips between DoS and
//      silent corruption depending on the code it faces.
#include <cstdio>

#include "bench_common.hpp"
#include "mitigation/latency_auditor.hpp"
#include "power/blocks.hpp"

namespace {

using namespace htnoc;

/// Cycles from kill-switch enable until the receiver-side detector
/// classifies the attacked link as TROJAN; 0 if never within the horizon.
Cycle detection_latency(int payload_states, Cycle min_gap) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sim::AttackSpec a = bench::paper_attack(1000);
  a.tasp.payload_states = payload_states;
  a.tasp.min_gap = min_gap;
  sc.attacks = {a};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 7;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (Cycle c = 0; c < 20000; ++c) {
    gen.step();
    simulator.step();
    if (simulator.detector(0).classification(
            direction_port(Direction::kSouth)) ==
        mitigation::LinkThreatClass::kTrojan) {
      return net.now() - 1000;
    }
  }
  return 0;
}

struct MitigationCost {
  Cycle completion = 0;
  std::uint64_t obfuscated_attempts = 0;
  std::uint64_t log_hits = 0;
};

MitigationCost lob_cost(int escalate_after, bool use_log) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.detector.escalate_after = escalate_after;
  sc.lob.use_success_log = use_log;
  sc.attacks = {bench::paper_attack(1000)};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 8;
  gp.total_requests = 1500;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  MitigationCost res;
  while (!gen.done() && res.completion < 1000000) {
    gen.step();
    simulator.step();
    ++res.completion;
  }
  const auto& lob = simulator.lob(4, direction_port(Direction::kNorth));
  res.obfuscated_attempts = lob.stats().obfuscated_attempts;
  res.log_hits = lob.stats().log_hits;
  return res;
}

struct BlastRadius {
  std::uint64_t healthy_rate_x100 = 0;  ///< pkts per 100 cycles pre-attack
  std::uint64_t attacked_rate_x100 = 0;
  int blocked = 0;
  int cores_full = 0;
};

BlastRadius blast_radius(RetransmissionScheme scheme) {
  sim::SimConfig sc;
  sc.noc.retrans_scheme = scheme;
  sc.mode = sim::MitigationMode::kNone;
  sc.attacks = {bench::paper_attack(1500)};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 21;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  BlastRadius res;
  std::uint64_t at_attack = 0;
  for (Cycle c = 0; c < 3000; ++c) {
    gen.step();
    simulator.step();
    if (c == 1499) at_attack = gen.stats().packets_delivered;
  }
  res.healthy_rate_x100 = at_attack * 100 / 1500;
  res.attacked_rate_x100 =
      (gen.stats().packets_delivered - at_attack) * 100 / 1500;
  const auto u = net.sample_utilization();
  res.blocked = u.routers_with_blocked_port;
  res.cores_full = u.routers_all_cores_full;
  return res;
}

struct RoutingRun {
  bool done = false;
  Cycle cycles = 0;
  double avg_latency = 0.0;
};

RoutingRun routing_run(bool adaptive, bool attack) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sim::AttackSpec a = bench::paper_attack(attack ? 500 : 100000000ULL);
  sc.attacks = {a};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  if (adaptive) net.use_west_first_routing();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  auto profile = traffic::blackscholes_profile();
  profile.injection_rate *= 3.0;  // press hard enough for routing to matter
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 22;
  gp.total_requests = 1500;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  RoutingRun res;
  while (!gen.done() && res.cycles < 1000000) {
    gen.step();
    simulator.step();
    ++res.cycles;
  }
  res.done = gen.done();
  res.avg_latency = gen.stats().avg_latency();
  return res;
}

struct DetectionRace {
  Cycle detector_at = 0;  ///< cycles after killsw; 0 = never
  Cycle auditor_at = 0;
  std::uint64_t auditor_false_alarms = 0;  ///< alarms raised pre-attack
};

DetectionRace detection_race() {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  // Keep retransmissions flowing but never hide the dest field, so both
  // detectors face a persistent attack.
  sc.lob.sequence = {{ObfMethod::kInvert, ObfGranularity::kPayload}};
  constexpr Cycle kAttackAt = 3000;
  sc.attacks = {bench::paper_attack(kAttackAt)};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  mitigation::LatencyAuditor auditor;
  disp.add_listener([&](Cycle now, const PacketInfo&, Cycle lat) {
    auditor.observe(now, lat);
  });
  auto profile = traffic::blackscholes_profile();
  profile.injection_rate *= 2.0;  // bursty enough to tempt false alarms
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = 33;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  DetectionRace res;
  for (Cycle c = 0; c < kAttackAt + 3000; ++c) {
    gen.step();
    simulator.step();
    if (c == kAttackAt - 1) res.auditor_false_alarms = auditor.stats().alarms;
    if (c >= kAttackAt) {
      if (res.detector_at == 0 &&
          simulator.detector(0).classification(
              direction_port(Direction::kSouth)) ==
              mitigation::LinkThreatClass::kTrojan) {
        res.detector_at = c - kAttackAt;
      }
      if (res.auditor_at == 0 &&
          auditor.stats().alarms > res.auditor_false_alarms) {
        res.auditor_at = c - kAttackAt;
      }
    }
  }
  return res;
}

struct EccOutcome {
  std::uint64_t delivered_after = 0;
  std::uint64_t sdc = 0;
  int blocked = 0;
};

EccOutcome ecc_outcome(EccScheme scheme, trojan::PayloadPattern pattern) {
  sim::SimConfig sc;
  sc.noc.ecc_scheme = scheme;
  sc.mode = sim::MitigationMode::kNone;
  sim::AttackSpec a = bench::paper_attack(800);
  a.tasp.ecc = scheme;
  a.tasp.pattern = pattern;
  sc.attacks = {a};
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 34;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  std::uint64_t at_attack = 0;
  for (Cycle c = 0; c < 2200; ++c) {
    gen.step();
    simulator.step();
    if (c == 799) at_attack = gen.stats().packets_delivered;
  }
  EccOutcome out;
  out.delivered_after = gen.stats().packets_delivered - at_attack;
  for (RouterId r = 0; r < 16; ++r) {
    for (int p = 0; p < net.router(r).num_ports(); ++p) {
      out.sdc += net.router(r).input(p).stats().silent_corruptions;
    }
  }
  out.blocked = net.sample_utilization().routers_with_blocked_port;
  return out;
}

const char* classify_outcome(const EccOutcome& o) {
  if (o.blocked >= 8) return "DoS";
  if (o.sdc >= 10) return "silent corruption";
  return "absorbed";
}

}  // namespace

int main() {
  using namespace htnoc;
  bench::print_header("Ablations", "design-choice sweeps (DESIGN.md Sec. 5)");

  std::printf("\n1) TASP payload-counter width Y: area vs time-to-detection\n");
  std::printf("%6s %12s %18s\n", "Y", "area(um2)", "detect_lat(cyc)");
  for (const int y : {2, 4, 8, 16, 32}) {
    const double area =
        power::tasp_block(trojan::TargetKind::kDest, y).area_um2();
    const Cycle lat = detection_latency(y, 1);
    std::printf("%6d %12.2f %18llu\n", y, area,
                static_cast<unsigned long long>(lat));
  }

  std::printf("\n2) TASP duty cycle (min_gap): stealth vs abruptness\n");
  std::printf("%10s %18s\n", "min_gap", "detect_lat(cyc)");
  for (const Cycle gap : {Cycle{1}, Cycle{4}, Cycle{16}, Cycle{64}}) {
    const Cycle lat = detection_latency(8, gap);
    if (lat == 0) {
      std::printf("%10llu %18s\n", static_cast<unsigned long long>(gap),
                  "undetected");
    } else {
      std::printf("%10llu %18llu\n", static_cast<unsigned long long>(gap),
                  static_cast<unsigned long long>(lat));
    }
  }

  std::printf("\n3) detector escalation threshold: completion & obfuscation "
              "volume\n");
  std::printf("%16s %14s %14s\n", "escalate_after", "T_done(cyc)",
              "obf_attempts");
  for (const int thr : {2, 3, 4}) {
    const auto c = lob_cost(thr, true);
    std::printf("%16d %14llu %14llu\n", thr,
                static_cast<unsigned long long>(c.completion),
                static_cast<unsigned long long>(c.obfuscated_attempts));
  }

  std::printf("\n4) L-Ob per-flow success log on/off\n");
  std::printf("%8s %14s %14s %10s\n", "log", "T_done(cyc)", "obf_attempts",
              "log_hits");
  for (const bool use_log : {true, false}) {
    const auto c = lob_cost(2, use_log);
    std::printf("%8s %14llu %14llu %10llu\n", use_log ? "on" : "off",
                static_cast<unsigned long long>(c.completion),
                static_cast<unsigned long long>(c.obfuscated_attempts),
                static_cast<unsigned long long>(c.log_hits));
  }
  std::printf("\n5) retransmission-buffer placement vs DoS blast radius "
              "(no mitigation, single TASP)\n");
  std::printf("%14s %16s %17s %9s %12s\n", "scheme", "healthy(p/100c)",
              "attacked(p/100c)", "blocked", "cores_full");
  for (const auto scheme : {RetransmissionScheme::kOutputBuffer,
                            RetransmissionScheme::kPerVcBuffer}) {
    const BlastRadius b = blast_radius(scheme);
    std::printf("%14s %16llu %17llu %9d %12d\n", to_string(scheme).c_str(),
                static_cast<unsigned long long>(b.healthy_rate_x100),
                static_cast<unsigned long long>(b.attacked_rate_x100),
                b.blocked, b.cores_full);
  }
  std::printf("(the wedge lives on the request-class VCs either way, so the "
              "chip-level collapse is similar; per-VC slots do keep the "
              "reply class's dedicated slots free at the attacked port — "
              "see test_retrans_scheme for the port-level containment)\n");

  std::printf("\n6) routing algorithm under attack + L-Ob (3x load)\n");
  std::printf("%12s %8s %14s %10s\n", "routing", "attack", "T_done(cyc)",
              "avg_lat");
  for (const bool adaptive : {false, true}) {
    for (const bool attack : {false, true}) {
      const RoutingRun r = routing_run(adaptive, attack);
      std::printf("%12s %8s %14llu %10.1f\n",
                  adaptive ? "west_first" : "xy", attack ? "yes" : "no",
                  static_cast<unsigned long long>(r.cycles), r.avg_latency);
    }
  }
  std::printf("\n7) detection race: threat detector vs latency auditor "
              "(NOCS'15 baseline)\n");
  const DetectionRace race = detection_race();
  std::printf("  threat detector classifies the link at t+%llu cycles\n",
              static_cast<unsigned long long>(race.detector_at));
  if (race.auditor_at > 0) {
    std::printf("  latency auditor first alarms at t+%llu cycles "
                "(%llu false alarms before the attack)\n",
                static_cast<unsigned long long>(race.auditor_at),
                static_cast<unsigned long long>(race.auditor_false_alarms));
  } else {
    std::printf("  latency auditor never alarms within t+3000 "
                "(%llu false alarms before the attack) — the wedged flow "
                "produces no late deliveries to observe\n",
                static_cast<unsigned long long>(race.auditor_false_alarms));
  }
  std::printf("  (the paper's critique of delay-based detection, "
              "quantified)\n");

  std::printf("\n8) link ECC scheme x trojan payload: attack outcome matrix\n");
  std::printf("%10s | %14s %14s %14s\n", "link ECC", "1-bit payload",
              "2-bit payload", "3-bit payload");
  for (const auto scheme :
       {EccScheme::kSecded, EccScheme::kParity, EccScheme::kNone}) {
    const EccOutcome one =
        ecc_outcome(scheme, trojan::PayloadPattern::kSingleCorrectable);
    const EccOutcome two =
        ecc_outcome(scheme, trojan::PayloadPattern::kDoubleDetectable);
    const EccOutcome three =
        ecc_outcome(scheme, trojan::PayloadPattern::kTripleSdc);
    std::printf("%10s | %14s %14s %14s\n", to_string(scheme).c_str(),
                classify_outcome(one), classify_outcome(two),
                classify_outcome(three));
  }
  std::printf("(the paper's TASP is the secded/2-bit cell; every other cell "
              "is what an attacker tuned to a different code would get)\n\n");
  return 0;
}
