// Figure 2 — how the three fault sources on a single link change packet
// latency as a function of hop distance:
//   transient fault  -> one retransmission penalty on the faulty hop,
//   permanent fault  -> reroute around the link (+hops),
//   TASP HT          -> trojan-defined delay (unbounded without mitigation;
//                       small with s2s L-Ob).
//
// We send isolated probe packets from increasing distances toward router 0
// across the instrumented first x-dimension link and report the latency per
// configuration.
#include <cstdio>
#include <optional>

#include "bench_common.hpp"

namespace {

using namespace htnoc;

/// Latency of one probe packet src_router -> router 0, or nullopt if it
/// never arrives within the budget.
std::optional<Cycle> probe_latency(sim::SimConfig sc, RouterId src_router,
                                   bool pre_reroute) {
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  if (pre_reroute) {
    // Permanent-fault case: the link is already classified and disabled;
    // measure the steady-state rerouted latency.
    net.disable_link({4, Direction::kNorth});
    net.disable_link({0, Direction::kSouth});
    net.use_updown_routing();
  }
  std::optional<Cycle> latency;
  net.set_delivery_callback(
      [&](Cycle, const PacketInfo&, Cycle lat) { latency = lat; });

  // Let the kill switch (if any) engage before probing.
  simulator.run(10);

  PacketInfo info;
  info.id = net.next_packet_id();
  info.src_core = net.geometry().core_at(src_router, 0);
  info.dest_core = 0;
  info.src_router = src_router;
  info.dest_router = 0;
  info.length = 1;
  info.inject_cycle = net.now();
  if (!net.try_inject(info, {})) return std::nullopt;
  for (int i = 0; i < 3000 && !latency.has_value(); ++i) simulator.step();
  return latency;
}

const char* fmt(std::optional<Cycle> lat, char* buf) {
  if (!lat.has_value()) {
    std::snprintf(buf, 16, "stalled");
  } else {
    std::snprintf(buf, 16, "%llu", static_cast<unsigned long long>(*lat));
  }
  return buf;
}

}  // namespace

int main() {
  using namespace htnoc;
  bench::print_header("Figure 2",
                      "latency vs distance per fault type on one link");

  // All x-y routes into router 0 from rows 1-3 funnel through the column-0
  // northbound link r4->N, so that is the instrumented link; the probe
  // sources below all cross it, at hop distances 1 through 6.
  const RouterId sources[] = {4, 5, 8, 10, 13, 15};

  std::printf("%-10s %-10s %-12s %-12s %-12s %-12s\n", "src", "hops",
              "clean", "transient", "permanent", "tasp+L-Ob");
  char b1[16], b2[16], b3[16], b4[16];
  for (const RouterId src : sources) {
    NocConfig noc;
    const MeshGeometry geom(noc.mesh_width, noc.mesh_height, noc.concentration);

    // Clean baseline.
    sim::SimConfig clean;
    clean.noc = noc;
    const auto lat_clean = probe_latency(std::move(clean), src, false);

    // Deterministic "transient" event: exactly one two-bit upset on the
    // probed link (a trojan with an enormous min_gap strikes once), so the
    // packet pays exactly one retransmission penalty.
    sim::SimConfig trans;
    trans.noc = noc;
    sim::AttackSpec once;
    once.link = {4, Direction::kNorth};
    once.tasp.kind = trojan::TargetKind::kDest;
    once.tasp.target_dest = 0;
    once.tasp.min_gap = 1000000;  // strike exactly once: a transient event
    once.enable_killsw_at = 0;
    trans.attacks.push_back(once);
    trans.mode = sim::MitigationMode::kNone;
    const auto lat_trans = probe_latency(std::move(trans), src, false);

    // Permanent fault: link disabled, up*/down* reroute (+hops).
    sim::SimConfig perm;
    perm.noc = noc;
    const auto lat_perm = probe_latency(std::move(perm), src, true);

    // TASP with L-Ob mitigation: a few retransmissions then obfuscation.
    sim::SimConfig tasp;
    tasp.noc = noc;
    sim::AttackSpec a;
    a.link = {4, Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 0;
    tasp.attacks.push_back(a);
    tasp.mode = sim::MitigationMode::kLOb;
    const auto lat_tasp = probe_latency(std::move(tasp), src, false);

    std::printf("r%-9d %-10d %-12s %-12s %-12s %-12s\n", src,
                geom.hop_distance(src, 0), fmt(lat_clean, b1),
                fmt(lat_trans, b2), fmt(lat_perm, b3), fmt(lat_tasp, b4));
  }

  // The unmitigated TASP case from the figure: latency is unbounded.
  sim::SimConfig doomed;
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = 0;
  doomed.attacks.push_back(a);
  doomed.mode = sim::MitigationMode::kNone;
  const auto lat = probe_latency(std::move(doomed), 4, false);
  std::printf("\nTASP without mitigation, src r4: %s (retransmission loop "
              "never ends — the DoS)\n\n",
              lat.has_value() ? "delivered?!" : "stalled");
  return lat.has_value() ? 1 : 0;
}
