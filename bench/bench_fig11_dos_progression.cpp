// Figure 11 — buffer utilization and router saturation over time for the
// Blackscholes workload:
//  (a) a single TASP enabled after a 1500-cycle warm-up, NO mitigation
//      (with Fort-NoCs-style e2e data obfuscation in place — which fails,
//      because an in-network DPI trojan keys on the routing fields e2e
//      cannot hide);
//  (b) the same period with no active trojan.
//
// Both grid points (and their seed replicates) are dispatched through the
// sweep engine, so the whole figure regenerates in parallel under
// `--jobs N` / $HTNOC_JOBS; the printed series and aggregates are
// byte-identical for any thread count.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "mitigation/e2e.hpp"
#include "sweep/runner.hpp"

namespace {

using namespace htnoc;

void print_series(const sweep::RunResult& r, Cycle origin, const char* label) {
  std::printf("\n--- %s ---\n", label);
  std::printf("# %s\n", label);
  std::printf("cycle,input_port,output_port,injection_port,all_cores_full,"
              "majority_cores_full,port_blocked\n");
  for (const auto& s : r.util_series) {
    std::printf("%lld,%d,%d,%d,%d,%d,%d\n",
                static_cast<long long>(s.cycle) - static_cast<long long>(origin),
                s.input_port_flits, s.output_port_flits,
                s.injection_port_flits, s.routers_all_cores_full,
                s.routers_majority_cores_full, s.routers_with_blocked_port);
  }
  const auto& end = r.final_util;
  std::printf("at t+1500: input=%d output=%d injection=%d | blocked=%d/16 "
              "majority_cores_full=%d/16 all_cores_full=%d/16\n",
              end.input_port_flits, end.output_port_flits,
              end.injection_port_flits, end.routers_with_blocked_port,
              end.routers_majority_cores_full, end.routers_all_cores_full);
  std::uint64_t at_attack = 0;
  for (const auto& t : r.throughput_series) {
    if (t.cycle <= origin) at_attack = t.primary_delivered;
  }
  std::printf("throughput: %llu packets in warm-up half, %llu after\n",
              static_cast<unsigned long long>(at_attack),
              static_cast<unsigned long long>(r.traffic.packets_delivered -
                                              at_attack));
  if (r.trojan_injections > 0) {
    std::printf("trojan injections: %llu (e2e obfuscation failed to prevent "
                "triggering)\n",
                static_cast<unsigned long long>(r.trojan_injections));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htnoc;
  bench::print_header(
      "Figure 11",
      "DoS progression: single TASP without mitigation vs no HT");

  sweep::SweepSpec spec;
  spec.modes = {sim::MitigationMode::kNone};
  spec.attack_scenarios = {
      {"single_tasp", {bench::paper_attack(1500)}},
      {"no_ht", {bench::paper_attack(100000000ULL)}},
  };
  spec.profiles = {"blackscholes"};
  spec.replicates = 3;
  spec.base_seed = 1;
  spec.run_cycles = 3000;
  spec.probe_period = 50;
  // e2e obfuscation of the memory address (the data a Fort-NoCs-style
  // scheme can scramble); the dest field must remain routable — which is
  // exactly why the attack still triggers.
  spec.transform_factory = [](const sweep::RunSpec& rs) {
    std::function<void(PacketInfo&)> transform;
    if (rs.attack_name == "single_tasp") {
      const mitigation::E2eObfuscator e2e(0xF0E7);
      transform = [e2e](PacketInfo& info) {
        info.mem_addr =
            e2e.scramble_mem(info.src_core, info.dest_core, info.mem_addr);
      };
    }
    return transform;
  };

  const auto t0 = std::chrono::steady_clock::now();
  const sweep::SweepRunner runner({bench::parse_jobs(argc, argv)});
  const sweep::SweepResult result = runner.run(spec);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  print_series(result.runs[0], 1500,
               "(a) single active TASP HT, no mitigation, e2e failed");
  print_series(result.runs[3], 1500, "(b) no HT (normal operation)");

  std::printf("\nreplicate aggregates (n=%d per case):\n", spec.replicates);
  const auto& names = sweep::RunResult::metric_names();
  for (const auto& gs : result.summary) {
    std::printf("  %s:\n", gs.label.c_str());
    for (std::size_t k = 0; k < names.size(); ++k) {
      if (names[k] == "delivered" || names[k] == "trojan_injections" ||
          names[k] == "util_blocked" || names[k] == "util_all_full") {
        std::printf("    %-18s mean=%.1f stddev=%.2f min=%.0f max=%.0f\n",
                    names[k].c_str(), gs.metrics[k].mean, gs.metrics[k].stddev,
                    gs.metrics[k].min, gs.metrics[k].max);
      }
    }
  }
  std::printf("\n(paper: within 50-100 cycles back pressure reaches 68%% "
              "(11/16) of routers; by 1500 cycles 81%% (13/16) of injection "
              "ports are deadlocked)\n");
  std::printf("[sweep: %zu runs on %d thread(s) in %.2fs]\n\n",
              result.runs.size(), result.threads_used, secs);
  return result.failures() == 0 ? 0 : 1;
}
