// Figure 11 — buffer utilization and router saturation over time for the
// Blackscholes workload:
//  (a) a single TASP enabled after a 1500-cycle warm-up, NO mitigation
//      (with Fort-NoCs-style e2e data obfuscation in place — which fails,
//      because an in-network DPI trojan keys on the routing fields e2e
//      cannot hide);
//  (b) the same period with no active trojan.
#include <iostream>

#include "bench_common.hpp"
#include "mitigation/e2e.hpp"
#include "stats/stats.hpp"

namespace {

using namespace htnoc;

void run_case(bool attack, const char* label) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kNone;
  sc.attacks.push_back(
      bench::paper_attack(attack ? 1500 : 100000000ULL));
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();

  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  // e2e obfuscation of the memory address (the data a Fort-NoCs-style
  // scheme can scramble); the dest field must remain routable.
  const mitigation::E2eObfuscator e2e(0xF0E7);
  gp.packet_transform = [&e2e](PacketInfo& info) {
    info.mem_addr = e2e.scramble_mem(info.src_core, info.dest_core,
                                     info.mem_addr);
  };
  traffic::TrafficGenerator gen(net, model, gp, disp);

  stats::UtilizationProbe probe(50);
  std::uint64_t delivered_at_attack = 0;
  for (Cycle c = 0; c < 3000; ++c) {
    gen.step();
    simulator.step();
    probe.maybe_sample(net);
    if (c == 1499) delivered_at_attack = gen.stats().packets_delivered;
  }

  std::printf("\n--- %s ---\n", label);
  probe.print_csv(std::cout, 1500, label);
  const auto end = net.sample_utilization();
  std::printf("at t+1500: input=%d output=%d injection=%d | blocked=%d/16 "
              "majority_cores_full=%d/16 all_cores_full=%d/16\n",
              end.input_port_flits, end.output_port_flits,
              end.injection_port_flits, end.routers_with_blocked_port,
              end.routers_majority_cores_full, end.routers_all_cores_full);
  std::printf("throughput: %llu packets in warm-up half, %llu after\n",
              static_cast<unsigned long long>(delivered_at_attack),
              static_cast<unsigned long long>(
                  gen.stats().packets_delivered - delivered_at_attack));
  if (attack) {
    std::printf("trojan injections: %llu (e2e obfuscation failed to prevent "
                "triggering)\n",
                static_cast<unsigned long long>(
                    simulator.tasp(0).stats().injections));
  }
}

}  // namespace

int main() {
  using namespace htnoc;
  bench::print_header(
      "Figure 11",
      "DoS progression: single TASP without mitigation vs no HT");
  run_case(true, "(a) single active TASP HT, no mitigation, e2e failed");
  run_case(false, "(b) no HT (normal operation)");
  std::printf("\n(paper: within 50-100 cycles back pressure reaches 68%% "
              "(11/16) of routers; by 1500 cycles 81%% (13/16) of injection "
              "ports are deadlocked)\n\n");
  return 0;
}
