// Google-benchmark microbenchmarks of the hot primitives: SECDED
// encode/decode, obfuscation transforms, the trojan's DPI comparator, and
// whole-network simulation throughput.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "ecc/secded_reference.hpp"
#include "noc/obfuscation.hpp"
#include "verify/snapshot.hpp"

namespace {

using namespace htnoc;

void BM_SecdedEncode(benchmark::State& state) {
  const auto& codec = ecc::secded();
  std::uint64_t d = 0x0123456789ABCDEFULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(d));
    d = d * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeClean(benchmark::State& state) {
  const auto& codec = ecc::secded();
  const Codeword72 cw = codec.encode(0xDEADBEEF12345678ULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeClean);

void BM_SecdedDecodeSingleError(benchmark::State& state) {
  const auto& codec = ecc::secded();
  Codeword72 cw = codec.encode(0xDEADBEEF12345678ULL);
  cw.flip(21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeSingleError);

void BM_SecdedDecodeDoubleError(benchmark::State& state) {
  const auto& codec = ecc::secded();
  Codeword72 cw = codec.encode(0xDEADBEEF12345678ULL);
  cw.flip(3);
  cw.flip(40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeDoubleError);

// Bit-serial oracle implementation, kept for comparison: the ratio against
// BM_SecdedEncode / BM_SecdedDecodeClean is the table-driven speedup.
void BM_SecdedReferenceEncode(benchmark::State& state) {
  const auto& codec = ecc::secded_reference();
  std::uint64_t d = 0x0123456789ABCDEFULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(d));
    d = d * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_SecdedReferenceEncode);

void BM_SecdedReferenceDecodeClean(benchmark::State& state) {
  const auto& codec = ecc::secded_reference();
  const Codeword72 cw = codec.encode(0xDEADBEEF12345678ULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(cw));
  }
}
BENCHMARK(BM_SecdedReferenceDecodeClean);

void BM_ObfuscationRoundTrip(benchmark::State& state) {
  const auto method = static_cast<ObfMethod>(state.range(0));
  ObfuscationTag tag;
  tag.method = method;
  tag.granularity = ObfGranularity::kFlit;
  std::uint64_t w = 0xA5A55A5ADEADBEEFULL;
  for (auto _ : state) {
    const std::uint64_t o = obf::apply(w, tag, 0x1234567890ABCDEFULL);
    benchmark::DoNotOptimize(obf::undo(o, tag, 0x1234567890ABCDEFULL));
    w += 0x9E3779B97F4A7C15ULL;
  }
}
BENCHMARK(BM_ObfuscationRoundTrip)
    ->Arg(static_cast<int>(ObfMethod::kInvert))
    ->Arg(static_cast<int>(ObfMethod::kShuffle))
    ->Arg(static_cast<int>(ObfMethod::kScramble));

void BM_TaspInspection(benchmark::State& state) {
  trojan::TaspParams p;
  p.kind = trojan::TargetKind::kFull;
  trojan::Tasp t(p);
  t.set_kill_switch(true);
  wire::HeaderFields h;
  h.dest = 7;
  LinkPhit phit;
  phit.flit.wire = wire::pack_header(h);
  phit.codeword = ecc::secded().encode(phit.flit.wire);
  Cycle now = 0;
  for (auto _ : state) {
    t.on_traverse(++now, phit);
    benchmark::DoNotOptimize(phit);
  }
}
BENCHMARK(BM_TaspInspection);

void BM_NetworkStepIdle(benchmark::State& state) {
  NocConfig cfg;
  Network net(cfg);
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStepIdle);

// active_step disabled: every router and NI steps every cycle. The delta
// against BM_NetworkStepIdle is the active-set win on a quiet network.
void BM_NetworkStepIdleFullStepping(benchmark::State& state) {
  NocConfig cfg;
  cfg.active_step = false;
  Network net(cfg);
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStepIdleFullStepping);

void BM_NetworkStepLoaded(benchmark::State& state) {
  NocConfig cfg;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (auto _ : state) {
    gen.step();
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pkts_delivered"] =
      static_cast<double>(gen.stats().packets_delivered);
}
BENCHMARK(BM_NetworkStepLoaded);

void BM_NetworkStepUnderAttack(benchmark::State& state) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.attacks.push_back(bench::paper_attack(0));
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 2;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (auto _ : state) {
    gen.step();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkStepUnderAttack);

// Same scenario with full event capture — the delta against
// BM_NetworkStepUnderAttack is the price of tracing *enabled*; the
// tracing-*disabled* cost (a dead branch per instrumentation site) is
// already inside every other network benchmark.
void BM_NetworkStepUnderAttackTraced(benchmark::State& state) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.attacks.push_back(bench::paper_attack(0));
  sc.trace.enabled = true;
  sc.trace.capacity = std::size_t{1} << 16;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 2;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (auto _ : state) {
    gen.step();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
  if (simulator.trace_sink() != nullptr) {
    state.counters["events"] =
        static_cast<double>(simulator.trace_sink()->total_recorded());
  }
}
BENCHMARK(BM_NetworkStepUnderAttackTraced);

// Loaded traffic with the invariant auditor running a full-fabric census
// every cycle. The delta against BM_NetworkStepLoaded is the auditing
// price; the auditor-*off* cost (a null-pointer check per audit hook) is
// already inside every other network benchmark.
void BM_NetworkStepAudited(benchmark::State& state) {
  sim::SimConfig sc;
  sc.audit.enabled = true;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 3;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  for (auto _ : state) {
    gen.step();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["flits_tracked"] =
      static_cast<double>(simulator.auditor()->flits_tracked());
  if (!simulator.auditor()->clean()) {
    state.SkipWithError("invariant audit failed under benchmark load");
  }
}
BENCHMARK(BM_NetworkStepAudited);

// --- large-fabric step benchmarks (the SoA hot-path gate) ---
//
// The default-config benchmarks above run the paper's 4x4 concentrated
// mesh; these two run the fabric sizes the data-oriented step loop is
// gated on (docs/PERFORMANCE.md). Traffic is injected by hand at a fixed
// 1/32 cores-per-cycle rate — the same drive as bench_topology_scaling —
// so the measurement is the step loop, not the traffic model.

void drive_loaded_fabric(benchmark::State& state, int k,
                         bool attacked) {
  sim::SimConfig sc;
  sc.noc.topology = TopologyKind::kMesh;
  sc.noc.mesh_width = k;
  sc.noc.mesh_height = k;
  sc.noc.concentration = 1;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  if (attacked) {
    sc.mode = sim::MitigationMode::kLOb;
    // The k x k analogue of bench::paper_attack: a TASP on the column-0
    // northbound feeder into router 0 (router k is one row below router 0).
    sim::AttackSpec a;
    a.link = {static_cast<RouterId>(k), Direction::kNorth};
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 0;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  const int cores = net.geometry().num_cores();
  const int per_cycle = cores / 32 > 0 ? cores / 32 : 1;

  Rng rng(0x5EED);
  const auto inject = [&] {
    for (int i = 0; i < per_cycle; ++i) {
      PacketInfo info;
      info.id = net.next_packet_id();
      info.src_core = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(cores)));
      info.dest_core = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(cores)));
      info.src_router = net.geometry().router_of_core(info.src_core);
      info.dest_router = net.geometry().router_of_core(info.dest_core);
      info.length = static_cast<int>(rng.next_in(1, 4));
      info.inject_cycle = net.now();
      const std::vector<std::uint64_t> payload(
          static_cast<std::size_t>(info.length), 0xDA7Aull);
      (void)net.try_inject(info, payload);
    }
  };

  // Warm-up fills the fabric so the measured region is steady-state load,
  // not the empty-network ramp.
  for (int c = 0; c < 100; ++c) {
    inject();
    simulator.step();
  }
  for (auto _ : state) {
    inject();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delivered"] = static_cast<double>(net.packets_delivered());
}

void BM_NetworkStepLoaded16x16(benchmark::State& state) {
  drive_loaded_fabric(state, 16, /*attacked=*/false);
}
BENCHMARK(BM_NetworkStepLoaded16x16)->Unit(benchmark::kMicrosecond);

void BM_NetworkStepUnderAttack64x64(benchmark::State& state) {
  drive_loaded_fabric(state, 64, /*attacked=*/true);
}
BENCHMARK(BM_NetworkStepUnderAttack64x64)->Unit(benchmark::kMicrosecond);

// --- campaign warmup strategies ---
//
// The snapshot-forking fault campaign amortizes one long warmup across
// every scenario. These two benchmarks price both strategies for a single
// scenario (kWarmup cycles of steady-state traffic, then kScenario audited
// cycles of scenario body): the rerun benchmark pays the warmup inside
// every scenario, the fork benchmark restores the shared snapshot instead.
// Their ratio is the campaign speedup and is hard-gated by
// scripts/check_bench_regression.py; each exports a scenarios_per_sec
// counter tracked in bench/baseline.json.
constexpr Cycle kWarmupCycles = 1000;
constexpr Cycle kScenarioCycles = 250;

sim::SimConfig campaign_bench_config() {
  sim::SimConfig sc;
  sc.audit.enabled = true;
  return sc;
}

void step_rig(sim::Simulator& simulator, traffic::TrafficGenerator& gen,
              Cycle cycles) {
  for (Cycle c = 0; c < cycles; ++c) {
    gen.step();
    simulator.step();
  }
}

void BM_CampaignWarmupRerun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(campaign_bench_config());
    Network& net = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 7;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    step_rig(simulator, gen, kWarmupCycles + kScenarioCycles);
    benchmark::DoNotOptimize(net.packets_delivered());
  }
  state.counters["scenarios_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignWarmupRerun);

void BM_CampaignSnapshotFork(benchmark::State& state) {
  // The blob is built once for the whole campaign (a pure function of the
  // campaign seed), so its cost sits outside the per-scenario loop here
  // exactly as it amortizes to ~zero across thousands of real scenarios.
  std::vector<std::uint8_t> blob;
  {
    sim::Simulator simulator(campaign_bench_config());
    Network& net = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 7;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    step_rig(simulator, gen, kWarmupCycles);
    blob = verify::save_snapshot(simulator, {&gen});
  }
  for (auto _ : state) {
    sim::Simulator simulator(campaign_bench_config());
    Network& net = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(net);
    traffic::AppTrafficModel model(net.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 7;
    traffic::TrafficGenerator gen(net, model, gp, disp);
    verify::load_snapshot(simulator, {&gen}, blob);
    step_rig(simulator, gen, kScenarioCycles);
    benchmark::DoNotOptimize(net.packets_delivered());
  }
  state.counters["scenarios_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignSnapshotFork);

}  // namespace

BENCHMARK_MAIN();
