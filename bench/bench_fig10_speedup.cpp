// Figure 10 — speedup of continuing to use infected links through s2s L-Ob
// obfuscation versus disabling them and rerouting (the Ariadne baseline),
// for four application profiles at 0/5/10/15% infected links.
//
// Speedup is completion time of the rerouting run divided by completion
// time of the L-Ob run for the same workload; the rerouting series is the
// 1.0 reference, matching the paper's presentation.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace htnoc;
  bench::print_header("Figure 10",
                      "s2s L-Ob vs rerouting (Ariadne) speedup sweep");

  const char* apps[] = {"blackscholes", "facesim", "ferret", "fft"};
  const int percents[] = {0, 5, 10, 15};
  constexpr std::uint64_t kRequests = 2500;

  std::printf("\n%-14s %6s | %12s %12s | %10s %10s\n", "app", "links%",
              "T_lob(cyc)", "T_rr(cyc)", "lob spdup", "rr spdup");
  for (const char* app : apps) {
    for (const int pct : percents) {
      const auto infected = bench::infected_links(pct);
      // Offered load scaled so the network — not the injection process —
      // is the bottleneck: completion time then reflects sustained
      // network capacity under each mitigation.
      constexpr double kRateScale = 5.0;
      const auto lob = bench::run_completion(app, sim::MitigationMode::kLOb,
                                             infected, kRequests, 2000000, 1,
                                             kRateScale);
      const auto rr = bench::run_completion(app, sim::MitigationMode::kReroute,
                                            infected, kRequests, 2000000, 1,
                                            kRateScale);
      if (!lob.done || !rr.done) {
        std::printf("%-14s %5d%% | %12s %12s | did not complete in budget\n",
                    app, pct, lob.done ? "done" : "STUCK",
                    rr.done ? "done" : "STUCK");
        continue;
      }
      const double speedup =
          static_cast<double>(rr.cycles) / static_cast<double>(lob.cycles);
      std::printf("%-14s %5d%% | %12llu %12llu | %10.2f %10.2f\n", app, pct,
                  static_cast<unsigned long long>(lob.cycles),
                  static_cast<unsigned long long>(rr.cycles), speedup, 1.0);
    }
    std::printf("\n");
  }
  std::printf("(paper Fig. 10: L-Ob speedup grows with infection rate, up to "
              "~2.5-3x at 15%%)\n\n");
  return 0;
}
