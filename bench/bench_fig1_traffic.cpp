// Figure 1 — traffic distribution of the Blackscholes-class workload on the
// 64-core, 16-router concentrated mesh:
//   (a) router-to-router packet-count matrix,
//   (b) per-router source totals laid out geographically,
//   (c) share of traffic crossing each link under x-y routing.
#include <iostream>

#include "bench_common.hpp"
#include "stats/stats.hpp"

int main() {
  using namespace htnoc;
  bench::print_header("Figure 1", "Blackscholes traffic distribution");

  NocConfig cfg;
  Network net(cfg);
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 42;
  gp.total_requests = 5000;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  stats::TrafficMatrix matrix(net.geometry());
  disp.add_listener([&](Cycle, const PacketInfo& info, Cycle) {
    matrix.record(info);
  });

  Cycle c = 0;
  while (!gen.done() && c < 2000000) {
    gen.step();
    net.step();
    ++c;
  }

  std::printf("\n(a) router-to-router request packet counts "
              "(z-axis of Fig. 1a):\n");
  matrix.print_matrix(std::cout);

  std::printf("\n(b) per-router source totals, geographic layout "
              "(Fig. 1b hot spots):\n");
  matrix.print_source_heatmap(std::cout);

  std::printf("\n(c) per-link traffic share under x-y routing (Fig. 1c):\n");
  const auto loads = stats::measure_link_loads(net);
  stats::print_link_loads(std::cout, loads, net.geometry());

  // Headline observations the paper draws from this figure.
  std::uint64_t to_r0 = matrix.col_total(0);
  std::printf("\nsummary: %llu/%llu packets (%.1f%%) target router 0 "
              "(the primary core)\n",
              static_cast<unsigned long long>(to_r0),
              static_cast<unsigned long long>(matrix.grand_total()),
              100.0 * static_cast<double>(to_r0) /
                  static_cast<double>(matrix.grand_total()));
  double max_share = 0.0;
  LinkRef busiest{};
  for (const auto& l : loads) {
    if (l.share > max_share) {
      max_share = l.share;
      busiest = l.link;
    }
  }
  std::printf("busiest link: r%d->%s carrying %.2f%% of all link traversals\n",
              busiest.from, to_string(busiest.dir).c_str(), 100.0 * max_share);
  std::printf("completed %llu packets in %llu cycles\n",
              static_cast<unsigned long long>(gen.stats().packets_delivered),
              static_cast<unsigned long long>(c));

  // The paper "analyzed a dozen more benchmarks" and showed Blackscholes
  // for clarity; summarize each profile's localization so their distinct
  // personalities are visible.
  std::printf("\nper-profile localization summary (top destination router "
              "and its traffic share):\n");
  for (const auto& profile : traffic::all_profiles()) {
    Network n2(cfg);
    traffic::DeliveryDispatcher d2;
    d2.install(n2);
    traffic::AppTrafficModel m2(n2.geometry(), profile);
    traffic::TrafficGenerator::Params g2;
    g2.seed = 42;
    g2.total_requests = 2000;
    traffic::TrafficGenerator gen2(n2, m2, g2, d2);
    stats::TrafficMatrix matrix2(n2.geometry());
    d2.add_listener([&](Cycle, const PacketInfo& info, Cycle) {
      matrix2.record(info);
    });
    Cycle c2 = 0;
    while (!gen2.done() && c2 < 2000000) {
      gen2.step();
      n2.step();
      ++c2;
    }
    RouterId top = 0;
    for (RouterId r = 1; r < 16; ++r) {
      if (matrix2.col_total(r) > matrix2.col_total(top)) top = r;
    }
    std::printf("  %-14s top dest r%-2d with %4.1f%% of packets, mean hop "
                "count of demand %.2f\n",
                profile.name.c_str(), top,
                100.0 * static_cast<double>(matrix2.col_total(top)) /
                    static_cast<double>(matrix2.grand_total()),
                [&] {
                  const traffic::AppTrafficModel m(n2.geometry(), profile);
                  const auto dm = m.demand_matrix();
                  double hops = 0.0;
                  for (RouterId s = 0; s < 16; ++s) {
                    for (RouterId t = 0; t < 16; ++t) {
                      hops += dm[s][t] * n2.geometry().hop_distance(s, t);
                    }
                  }
                  return hops;
                }());
  }
  std::printf("\n");
  return 0;
}
