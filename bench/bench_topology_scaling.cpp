// Large-fabric scaling of the topology layer: simulated cycles/second
// (items_per_second) as a function of fabric size x step_threads, on plain
// k x k meshes from 8x8 (64 routers) to 64x64 (4096 routers) plus a 16x16
// torus. Measured curves live in docs/SCALING.md; CI runs a smoke subset
// and archives the JSON (--benchmark_out).
//
// Traffic is injected by hand at a fixed 1/32 cores-per-cycle rate so every
// size measures the same relative load and none of the cost is the traffic
// model (AppTrafficModel's sampling tables are quadratic in cores — 134 MB
// at 64x64 — and would dominate setup time).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"

namespace {

using namespace htnoc;

void drive_fabric(benchmark::State& state, TopologyKind kind) {
  const int k = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));

  sim::SimConfig sc;
  sc.noc.topology = kind;
  sc.noc.mesh_width = k;
  sc.noc.mesh_height = k;
  sc.noc.concentration = 1;
  sc.noc.step_threads = threads;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  const int cores = net.geometry().num_cores();
  const int per_cycle = cores / 32 > 0 ? cores / 32 : 1;

  Rng rng(0x5EED);
  const auto inject = [&] {
    for (int i = 0; i < per_cycle; ++i) {
      PacketInfo info;
      info.id = net.next_packet_id();
      info.src_core = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(cores)));
      info.dest_core = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(cores)));
      info.src_router = net.geometry().router_of_core(info.src_core);
      info.dest_router = net.geometry().router_of_core(info.dest_core);
      info.length = static_cast<int>(rng.next_in(1, 4));
      info.inject_cycle = net.now();
      const std::vector<std::uint64_t> payload(
          static_cast<std::size_t>(info.length), 0xDA7Aull);
      (void)net.try_inject(info, payload);
    }
  };

  // Warm-up fills the fabric so the measured region is steady-state load,
  // not the empty-network ramp.
  for (int c = 0; c < 100; ++c) {
    inject();
    simulator.step();
  }
  for (auto _ : state) {
    inject();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["routers"] = static_cast<double>(net.geometry().num_routers());
  state.counters["delivered"] = static_cast<double>(net.packets_delivered());
}

void BM_MeshScaling(benchmark::State& state) {
  drive_fabric(state, TopologyKind::kMesh);
}
BENCHMARK(BM_MeshScaling)
    ->ArgsProduct({{8, 16, 32, 64}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_TorusScaling(benchmark::State& state) {
  drive_fabric(state, TopologyKind::kTorus);
}
BENCHMARK(BM_TorusScaling)
    ->ArgsProduct({{16}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
