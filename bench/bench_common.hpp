// Shared helpers for the experiment benches. Each bench binary regenerates
// one table or figure of the paper (see DESIGN.md, experiment index) and
// prints the corresponding rows/series to stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace htnoc::bench {

/// Worker-thread count for sweep-based benches: `--jobs N` / `--jobs=N` on
/// the command line, else 0 (the sweep engine then consults $HTNOC_JOBS and
/// finally hardware_concurrency).
inline int parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      return std::atoi(argv[i] + 7);
    }
  }
  return 0;
}

/// The attack configuration used across the network-behaviour benches:
/// a single TASP on the column-0 northbound feeder into router 0, tuned to
/// the victim application's destination (Sec. V-B2 setup).
inline sim::AttackSpec paper_attack(Cycle enable_at) {
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kDest;
  a.tasp.target_dest = 0;
  a.enable_killsw_at = enable_at;
  return a;
}

/// Infected-link sets for the Fig. 10 sweep. All lie on destination-router-0
/// paths and leave the mesh connected when the rerouting policy disables
/// them bidirectionally. 48 mesh links total, so the sets correspond to
/// roughly 0 / 5 / 10 / 15 percent.
inline std::vector<LinkRef> infected_links(int percent) {
  switch (percent) {
    case 0: return {};
    case 5: return {{2, Direction::kWest}, {8, Direction::kNorth}};
    case 10:
      return {{2, Direction::kWest},
              {8, Direction::kNorth},
              {5, Direction::kWest},
              {9, Direction::kWest},
              {3, Direction::kWest}};
    case 15:
      return {{2, Direction::kWest},
              {8, Direction::kNorth},
              {5, Direction::kWest},
              {9, Direction::kWest},
              {3, Direction::kWest},
              {6, Direction::kWest},
              {10, Direction::kWest}};
    default: throw ContractViolation("unsupported infection percentage");
  }
}

struct CompletionResult {
  bool done = false;
  Cycle cycles = 0;
  double avg_latency = 0.0;
  std::uint64_t delivered = 0;
};

/// Run `profile` to completion of `requests` request packets under the
/// given mitigation mode and infected-link set.
inline CompletionResult run_completion(const std::string& profile_name,
                                       sim::MitigationMode mode,
                                       const std::vector<LinkRef>& infected,
                                       std::uint64_t requests,
                                       Cycle budget = 2000000,
                                       std::uint64_t seed = 1,
                                       double rate_scale = 1.0) {
  sim::SimConfig sc;
  sc.mode = mode;
  for (const LinkRef& l : infected) {
    sim::AttackSpec a;
    a.link = l;
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 1000;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  auto profile = traffic::profile_by_name(profile_name);
  profile.injection_rate *= rate_scale;
  traffic::AppTrafficModel model(net.geometry(), profile);
  traffic::TrafficGenerator::Params gp;
  gp.seed = seed;
  gp.total_requests = requests;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  simulator.set_drop_callback([&](PacketId id) { gen.requeue(id); });

  CompletionResult res;
  while (!gen.done() && res.cycles < budget) {
    gen.step();
    simulator.step();
    ++res.cycles;
  }
  res.done = gen.done();
  res.avg_latency = gen.stats().avg_latency();
  res.delivered = gen.stats().packets_delivered;
  return res;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("(reproduction; see EXPERIMENTS.md for paper-vs-measured notes)\n");
  std::printf("==============================================================\n");
}

}  // namespace htnoc::bench
