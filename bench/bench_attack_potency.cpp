// Attack potency (paper Sec. III-A, "Attack Potency" / "Link Selection"):
//   1. How many TASP implants does a chip-wide DoS need, and how much does
//      each extra trojan add to the attack's abruptness?
//   2. If the attacker places trojans on random links (because primary-core
//      locations vary at runtime), what is the probability of sighting the
//      target within a deadline, per target kind?
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace htnoc;

/// Candidate implant sites roughly ordered by how much dest-0 traffic they
/// carry under x-y routing (the attacker's Fig. 1 analysis).
const std::vector<LinkRef>& implant_sites() {
  static const std::vector<LinkRef> sites = {
      {4, Direction::kNorth}, {1, Direction::kWest},  {8, Direction::kNorth},
      {5, Direction::kWest},  {2, Direction::kWest},  {9, Direction::kWest},
      {12, Direction::kNorth}, {6, Direction::kWest},
  };
  return sites;
}

struct PotencyResult {
  Cycle cycles_to_half_throughput = 0;  ///< 0 = never within horizon
  int blocked_at_200 = 0;
  int cores_full_at_1500 = 0;
};

PotencyResult run_with_n_trojans(int n) {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kNone;
  for (int i = 0; i < n; ++i) {
    sim::AttackSpec a;
    a.link = implant_sites()[static_cast<std::size_t>(i)];
    a.tasp.kind = trojan::TargetKind::kDest;
    a.tasp.target_dest = 0;
    a.enable_killsw_at = 1500;
    sc.attacks.push_back(a);
  }
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 1;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  PotencyResult res;
  // Healthy throughput estimate from the warm-up.
  std::uint64_t delivered_prev = 0;
  double healthy_rate = 0.0;
  for (Cycle c = 0; c < 3000; ++c) {
    gen.step();
    simulator.step();
    if (c == 1499) {
      healthy_rate = static_cast<double>(gen.stats().packets_delivered) / 1500.0;
      delivered_prev = gen.stats().packets_delivered;
    }
    if (c >= 1500 && (c - 1500) % 10 == 9) {
      const std::uint64_t delivered = gen.stats().packets_delivered;
      const double rate =
          static_cast<double>(delivered - delivered_prev) / 10.0;
      delivered_prev = delivered;
      if (res.cycles_to_half_throughput == 0 && rate < healthy_rate / 2.0) {
        res.cycles_to_half_throughput = c - 1500 + 1;
      }
    }
    if (c == 1700) {
      res.blocked_at_200 = net.sample_utilization().routers_with_blocked_port;
    }
  }
  res.cores_full_at_1500 = net.sample_utilization().routers_all_cores_full;
  return res;
}

/// Probability that a TASP on a uniformly random mesh link sights its
/// target within `deadline` cycles of enabling, estimated by running every
/// link once (the traffic is deterministic per seed).
double sighting_probability(trojan::TargetKind kind, Cycle deadline) {
  NocConfig cfg;
  Network net(cfg);
  const auto links = net.all_links();
  int sighted = 0;
  // One network with a dormant-then-enabled trojan per link would have the
  // trojans interfere (they all inject); instead attach pure snoop-style
  // TASPs with an impossible-to-satisfy... simpler: run one simulation per
  // link with a single trojan and count sightings. Deterministic traffic
  // makes this an exact coverage measure rather than an estimate.
  for (const LinkRef& l : links) {
    sim::SimConfig sc;
    sim::AttackSpec a;
    a.link = l;
    a.tasp.kind = kind;
    a.tasp.target_dest = 0;
    a.tasp.target_src = 15;  // dest_src hunts the far-corner -> primary flow
    a.tasp.target_vc = 0;
    a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
    a.tasp.mem_mask = 0xF0000000u;
    a.tasp.min_gap = 1000000000ULL;  // sight, never strike (pure recon)
    a.enable_killsw_at = 0;
    sc.attacks.push_back(a);
    sim::Simulator simulator(std::move(sc));
    Network& n2 = simulator.network();
    traffic::DeliveryDispatcher disp;
    disp.install(n2);
    traffic::AppTrafficModel model(n2.geometry(),
                                   traffic::blackscholes_profile());
    traffic::TrafficGenerator::Params gp;
    gp.seed = 5;
    traffic::TrafficGenerator gen(n2, model, gp, disp);
    for (Cycle c = 0; c < deadline; ++c) {
      gen.step();
      simulator.step();
    }
    if (simulator.tasp(0).stats().target_sightings > 0) ++sighted;
  }
  return static_cast<double>(sighted) / static_cast<double>(links.size());
}

}  // namespace

int main() {
  using namespace htnoc;
  bench::print_header("Attack potency (Sec. III)",
                      "trojan count, abruptness, random-placement odds");

  std::printf("\n1) DoS abruptness vs number of implanted TASPs "
              "(dest-0 targeted, best sites first):\n");
  std::printf("%9s %24s %16s %20s\n", "trojans", "t_to_half_thruput(cyc)",
              "blocked@t+200", "cores_full@t+1500");
  for (const int n : {1, 2, 4, 8}) {
    const PotencyResult r = run_with_n_trojans(n);
    std::printf("%9d %24llu %16d %20d\n", n,
                static_cast<unsigned long long>(r.cycles_to_half_throughput),
                r.blocked_at_200, r.cores_full_at_1500);
  }
  std::printf("(paper: a single TASP suffices; more trojans increase the "
              "abruptness of the attack)\n");

  std::printf("\n2) Probability a randomly placed TASP sights its target "
              "within 2000 cycles (Blackscholes traffic):\n");
  std::printf("%10s %12s\n", "target", "P(sight)");
  for (const auto kind :
       {trojan::TargetKind::kDest, trojan::TargetKind::kSrc,
        trojan::TargetKind::kDestSrc, trojan::TargetKind::kMem,
        trojan::TargetKind::kVc}) {
    std::printf("%10s %11.0f%%\n", trojan::to_string(kind).c_str(),
                100.0 * sighting_probability(kind, 2000));
  }
  std::printf("(paper: random placement still has a high probability of "
              "sniffing the intended target — wider comparators sight less "
              "often, VC-keyed ones everywhere)\n\n");
  return 0;
}
