// Scaling of the intra-run parallel step (Network::step with
// step_threads > 1; see docs/SCALING.md). The headline series is the
// under-attack 16x16 mesh — 256 routers, 1024 cores, a saturating TASP and
// L-Ob mitigation active — at 1/2/4/8 step threads; the target on an
// >= 8-core host is >= 3x over serial at 8 threads, with the step_threads=1
// row within measurement noise of the pre-parallelism serial loop (the
// serial path never touches the pool, staging barriers or trace merge).
// The 4x4 rows document the other side of the trade: a 16-router mesh has
// too little work per shard for fork/join to pay off, which is why
// step_threads defaults to 1.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace htnoc;

sim::SimConfig mesh_config(int width, int height, int step_threads,
                           bool attacked) {
  sim::SimConfig sc;
  sc.noc.mesh_width = width;
  sc.noc.mesh_height = height;
  sc.noc.step_threads = step_threads;
  sc.noc.seed = 0xBEEF;
  sc.seed = 0xF00D;
  if (attacked) {
    sc.mode = sim::MitigationMode::kLOb;
    sim::AttackSpec atk = bench::paper_attack(0);
    // paper_attack targets the column-0 northbound feeder into router 0;
    // that feeder is the first router of row 1, i.e. index == mesh width.
    atk.link.from = static_cast<RouterId>(width);
    sc.attacks.push_back(atk);
  }
  return sc;
}

void run_stepping(benchmark::State& state, int width, int height,
                  bool attacked) {
  const int threads = static_cast<int>(state.range(0));
  sim::Simulator simulator(mesh_config(width, height, threads, attacked));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 2;
  traffic::TrafficGenerator gen(net, model, gp, disp);
  // Warm-up fills the fabric so the measured region is steady-state load,
  // not the empty-network ramp.
  for (int c = 0; c < 300; ++c) {
    gen.step();
    simulator.step();
  }
  for (auto _ : state) {
    gen.step();
    simulator.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["pkts_delivered"] =
      static_cast<double>(gen.stats().packets_delivered);
}

void BM_ParallelStep16x16UnderAttack(benchmark::State& state) {
  run_stepping(state, 16, 16, /*attacked=*/true);
}
BENCHMARK(BM_ParallelStep16x16UnderAttack)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelStep16x16Loaded(benchmark::State& state) {
  run_stepping(state, 16, 16, /*attacked=*/false);
}
BENCHMARK(BM_ParallelStep16x16Loaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ParallelStep4x4UnderAttack(benchmark::State& state) {
  run_stepping(state, 4, 4, /*attacked=*/true);
}
BENCHMARK(BM_ParallelStep4x4UnderAttack)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
