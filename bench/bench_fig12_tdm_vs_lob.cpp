// Figure 12 — comparison of two defenses against the same single-TASP
// attack on the Blackscholes-class application:
//  (a) TDM QoS with two domains: D2 hosts the targeted app, D1 background
//      work. The DoS collapses D2 but is contained there.
//  (b) our threat detector + s2s L-Ob: minimal degradation, the trojan is
//      sidestepped with 1-3 cycle obfuscation penalties.
#include <iostream>

#include "bench_common.hpp"
#include "stats/stats.hpp"

namespace {

using namespace htnoc;

sim::AttackSpec app_targeted_attack(Cycle enable_at) {
  // The trojan hunts the target *application* by its memory footprint
  // (Sec. V-B2 "sniffing packets for the target application").
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kMem;
  a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
  a.tasp.mem_mask = 0xF0000000u;
  a.enable_killsw_at = enable_at;
  return a;
}

void run_tdm_case() {
  sim::SimConfig sc;
  sc.noc.tdm_enabled = true;
  sc.mode = sim::MitigationMode::kNone;
  sc.attacks.push_back(app_targeted_attack(1500));
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);

  auto bg = traffic::fft_profile();
  bg.injection_rate = 0.008;
  traffic::AppTrafficModel m1(net.geometry(), bg);
  traffic::TrafficGenerator::Params p1;
  p1.seed = 10;
  p1.domain = TdmDomain::kD1;
  traffic::TrafficGenerator g1(net, m1, p1, disp);

  auto app = traffic::blackscholes_profile();
  app.injection_rate = 0.008;
  traffic::AppTrafficModel m2(net.geometry(), app);
  traffic::TrafficGenerator::Params p2;
  p2.seed = 20;
  p2.domain = TdmDomain::kD2;
  traffic::TrafficGenerator g2(net, m2, p2, disp);

  std::printf("\n--- (a) TDM, two domains, TASP targets the D2 app ---\n");
  std::printf("t_after_attack,d1_throughput,d2_throughput,input_util,"
              "blocked_routers\n");
  std::uint64_t d1_prev = 0;
  std::uint64_t d2_prev = 0;
  for (Cycle c = 0; c < 3500; ++c) {
    g1.step();
    g2.step();
    simulator.step();
    if (c >= 1000 && (c - 1000) % 250 == 0) {
      const auto u = net.sample_utilization();
      std::printf("%lld,%llu,%llu,%d,%d\n",
                  static_cast<long long>(c) - 1500,
                  static_cast<unsigned long long>(
                      g1.stats().packets_delivered - d1_prev),
                  static_cast<unsigned long long>(
                      g2.stats().packets_delivered - d2_prev),
                  u.input_port_flits, u.routers_with_blocked_port);
      d1_prev = g1.stats().packets_delivered;
      d2_prev = g2.stats().packets_delivered;
    }
  }
  std::printf("summary: D2 (target domain) collapses after t=0; D1 keeps "
              "its throughput — the threat is contained to the attacked "
              "domain's resources\n");
}

void run_lob_case() {
  sim::SimConfig sc;
  sc.mode = sim::MitigationMode::kLOb;
  sc.attacks.push_back(app_targeted_attack(1500));
  sim::Simulator simulator(std::move(sc));
  Network& net = simulator.network();
  traffic::DeliveryDispatcher disp;
  disp.install(net);
  traffic::AppTrafficModel model(net.geometry(),
                                 traffic::blackscholes_profile());
  traffic::TrafficGenerator::Params gp;
  gp.seed = 30;
  traffic::TrafficGenerator gen(net, model, gp, disp);

  std::printf("\n--- (b) threat detector + s2s L-Ob ---\n");
  std::printf("t_after_attack,throughput,input_util,blocked_routers,"
              "all_cores_full\n");
  std::uint64_t prev = 0;
  for (Cycle c = 0; c < 3500; ++c) {
    gen.step();
    simulator.step();
    if (c >= 1000 && (c - 1000) % 250 == 0) {
      const auto u = net.sample_utilization();
      std::printf("%lld,%llu,%d,%d,%d\n", static_cast<long long>(c) - 1500,
                  static_cast<unsigned long long>(
                      gen.stats().packets_delivered - prev),
                  u.input_port_flits, u.routers_with_blocked_port,
                  u.routers_all_cores_full);
      prev = gen.stats().packets_delivered;
    }
  }
  const auto& lob = simulator.lob(4, direction_port(Direction::kNorth));
  std::printf("summary: trojan injected %llu faults; L-Ob succeeded %llu "
              "times (%llu via the per-flow method log); network "
              "degradation stays within the 1-3 cycle obfuscation "
              "penalties\n",
              static_cast<unsigned long long>(
                  simulator.tasp(0).stats().injections),
              static_cast<unsigned long long>(lob.stats().successes),
              static_cast<unsigned long long>(lob.stats().log_hits));
}

}  // namespace

int main() {
  using namespace htnoc;
  bench::print_header("Figure 12", "TDM containment vs s2s L-Ob mitigation");
  run_tdm_case();
  run_lob_case();
  std::printf("\n");
  return 0;
}
