// Figure 12 — comparison of two defenses against the same single-TASP
// attack on the Blackscholes-class application:
//  (a) TDM QoS with two domains: D2 hosts the targeted app, D1 background
//      work. The DoS collapses D2 but is contained there.
//  (b) our threat detector + s2s L-Ob: minimal degradation, the trojan is
//      sidestepped with 1-3 cycle obfuscation penalties.
//
// Each case is a sweep spec (with seed replicates) executed by the
// parallel sweep engine; pass `--jobs N` or set $HTNOC_JOBS.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "sweep/runner.hpp"

namespace {

using namespace htnoc;

constexpr int kReplicates = 3;

sim::AttackSpec app_targeted_attack(Cycle enable_at) {
  // The trojan hunts the target *application* by its memory footprint
  // (Sec. V-B2 "sniffing packets for the target application").
  sim::AttackSpec a;
  a.link = {4, Direction::kNorth};
  a.tasp.kind = trojan::TargetKind::kMem;
  a.tasp.target_mem = traffic::blackscholes_profile().mem_base;
  a.tasp.mem_mask = 0xF0000000u;
  a.enable_killsw_at = enable_at;
  return a;
}

sweep::SweepSpec common_spec() {
  sweep::SweepSpec spec;
  spec.attack_scenarios = {{"app_targeted", {app_targeted_attack(1500)}}};
  spec.profiles = {"blackscholes"};
  spec.replicates = kReplicates;
  spec.run_cycles = 3500;
  spec.probe_period = 250;
  return spec;
}

double mean_of(const sweep::GridSummary& gs, const char* metric) {
  const auto& names = sweep::RunResult::metric_names();
  for (std::size_t k = 0; k < names.size(); ++k) {
    if (names[k] == metric) return gs.metrics[k].mean;
  }
  return 0.0;
}

void run_tdm_case(const sweep::SweepRunner& runner, double rate_008_scale) {
  sweep::SweepSpec spec = common_spec();
  spec.base_seed = 10;
  spec.base.noc.tdm_enabled = true;
  spec.modes = {sim::MitigationMode::kNone};
  // The measured application lives in TDM domain D2 at an absolute 0.008
  // injection rate; FFT-class background work fills D1 at the same rate.
  spec.primary_domain = TdmDomain::kD2;
  spec.rate_scales = {rate_008_scale};
  spec.background = sweep::BackgroundTraffic{"fft", 0.008, TdmDomain::kD1};

  const sweep::SweepResult result = runner.run(spec);
  const sweep::RunResult& r = result.runs[0];

  std::printf("\n--- (a) TDM, two domains, TASP targets the D2 app ---\n");
  std::printf("t_after_attack,d1_throughput,d2_throughput,input_util,"
              "blocked_routers\n");
  std::uint64_t d1_prev = 0;
  std::uint64_t d2_prev = 0;
  for (std::size_t k = 0; k < r.throughput_series.size(); ++k) {
    const auto& t = r.throughput_series[k];
    const auto& u = r.util_series[k];
    if (t.cycle >= 1000) {
      std::printf("%lld,%llu,%llu,%d,%d\n",
                  static_cast<long long>(t.cycle) - 1500,
                  static_cast<unsigned long long>(t.background_delivered -
                                                  d1_prev),
                  static_cast<unsigned long long>(t.primary_delivered -
                                                  d2_prev),
                  u.input_port_flits, u.routers_with_blocked_port);
    }
    d1_prev = t.background_delivered;
    d2_prev = t.primary_delivered;
  }
  std::printf("summary: D2 (target domain) collapses after t=0; D1 keeps "
              "its throughput — the threat is contained to the attacked "
              "domain's resources\n");
  std::printf("replicate means (n=%d): d1_delivered=%.1f d2_delivered=%.1f "
              "trojan_injections=%.1f\n",
              kReplicates, mean_of(result.summary[0], "bg_delivered"),
              mean_of(result.summary[0], "delivered"),
              mean_of(result.summary[0], "trojan_injections"));
}

void run_lob_case(const sweep::SweepRunner& runner) {
  sweep::SweepSpec spec = common_spec();
  spec.base_seed = 30;
  spec.modes = {sim::MitigationMode::kLOb};

  const sweep::SweepResult result = runner.run(spec);
  const sweep::RunResult& r = result.runs[0];

  std::printf("\n--- (b) threat detector + s2s L-Ob ---\n");
  std::printf("t_after_attack,throughput,input_util,blocked_routers,"
              "all_cores_full\n");
  std::uint64_t prev = 0;
  for (std::size_t k = 0; k < r.throughput_series.size(); ++k) {
    const auto& t = r.throughput_series[k];
    const auto& u = r.util_series[k];
    if (t.cycle >= 1000) {
      std::printf("%lld,%llu,%d,%d,%d\n",
                  static_cast<long long>(t.cycle) - 1500,
                  static_cast<unsigned long long>(t.primary_delivered - prev),
                  u.input_port_flits, u.routers_with_blocked_port,
                  u.routers_all_cores_full);
    }
    prev = t.primary_delivered;
  }
  std::printf("summary: trojan injected %llu faults; L-Ob succeeded %llu "
              "times (%llu via the per-flow method log); network "
              "degradation stays within the 1-3 cycle obfuscation "
              "penalties\n",
              static_cast<unsigned long long>(r.trojan_injections),
              static_cast<unsigned long long>(r.lob_successes),
              static_cast<unsigned long long>(r.lob_log_hits));
  std::printf("replicate means (n=%d): delivered=%.1f lob_successes=%.1f\n",
              kReplicates, mean_of(result.summary[0], "delivered"),
              mean_of(result.summary[0], "lob_successes"));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htnoc;
  bench::print_header("Figure 12", "TDM containment vs s2s L-Ob mitigation");
  const auto t0 = std::chrono::steady_clock::now();
  const sweep::SweepRunner runner({bench::parse_jobs(argc, argv)});
  const double rate_008_scale =
      0.008 / traffic::blackscholes_profile().injection_rate;
  run_tdm_case(runner, rate_008_scale);
  run_lob_case(runner);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("\n[sweep: 2 cases x %d replicates in %.2fs]\n\n", kReplicates,
              secs);
  return 0;
}
