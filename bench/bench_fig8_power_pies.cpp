// Figure 8 — power/area context for the TASP trojan:
//   left:  router dynamic & leakage power breakdown with a single TASP,
//   right: NoC area split (wire / active / trojan) and the worst case of a
//          TASP on every one of the 48 mesh links vs NoC dynamic power.
#include <cstdio>

#include "bench_common.hpp"
#include "power/blocks.hpp"

int main() {
  using namespace htnoc;
  using namespace htnoc::power;
  bench::print_header("Figure 8", "TASP power relative to router and NoC");

  const NocConfig cfg;
  const RouterBreakdown rb = router_breakdown(cfg);
  const BlockEstimate tasp = tasp_block(trojan::TargetKind::kDest);

  const double rdyn = rb.total.dynamic_uw() + tasp.dynamic_uw();
  std::printf("\nRouter dynamic power (paper: buffer 71%%, crossbar 18%%, "
              "SA 4%%, clock 6%%, TASP 1%%):\n");
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "buffers",
              rb.buffers.dynamic_uw(), 100.0 * rb.buffers.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "crossbar",
              rb.crossbar.dynamic_uw(), 100.0 * rb.crossbar.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "switch allocator",
              rb.switch_allocator.dynamic_uw(),
              100.0 * rb.switch_allocator.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "vc allocator",
              rb.vc_allocator.dynamic_uw(),
              100.0 * rb.vc_allocator.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "ecc codecs",
              rb.ecc.dynamic_uw(), 100.0 * rb.ecc.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.1f%%\n", "clock",
              rb.clock.dynamic_uw(), 100.0 * rb.clock.dynamic_uw() / rdyn);
  std::printf("  %-18s %10.1f uW  %5.2f%%\n", "single TASP HT",
              tasp.dynamic_uw(), 100.0 * tasp.dynamic_uw() / rdyn);

  const double rleak = rb.total.leakage_nw() + tasp.leakage_nw();
  std::printf("\nRouter leakage power (paper: buffer 88%%, crossbar 9%%, "
              "SA 3%%, TASP ~0%%):\n");
  std::printf("  %-18s %10.1f nW  %5.1f%%\n", "buffers",
              rb.buffers.leakage_nw(), 100.0 * rb.buffers.leakage_nw() / rleak);
  std::printf("  %-18s %10.1f nW  %5.1f%%\n", "crossbar",
              rb.crossbar.leakage_nw(),
              100.0 * rb.crossbar.leakage_nw() / rleak);
  std::printf("  %-18s %10.1f nW  %5.1f%%\n", "allocators",
              rb.switch_allocator.leakage_nw() + rb.vc_allocator.leakage_nw(),
              100.0 *
                  (rb.switch_allocator.leakage_nw() +
                   rb.vc_allocator.leakage_nw()) /
                  rleak);
  std::printf("  %-18s %10.1f nW  %5.1f%%\n", "ecc codecs",
              rb.ecc.leakage_nw(), 100.0 * rb.ecc.leakage_nw() / rleak);
  std::printf("  %-18s %10.1f nW  %5.2f%%\n", "single TASP HT",
              tasp.leakage_nw(), 100.0 * tasp.leakage_nw() / rleak);

  const NocBreakdown nb = noc_breakdown(cfg);
  std::printf("\nNoC area (paper: global wire 86%%, active 13%%, TASP ~1%% "
              "of the chart):\n");
  std::printf("  %-18s %12.0f um2  %5.2f%%\n", "global wires",
              nb.global_wire_area_um2,
              100.0 * nb.global_wire_area_um2 / nb.total_area_um2());
  std::printf("  %-18s %12.0f um2  %5.2f%%\n", "active (routers)",
              nb.routers.area_um2(),
              100.0 * nb.routers.area_um2() / nb.total_area_um2());
  std::printf("  %-18s %12.0f um2  %7.4f%%\n", "TASP on all 48 links",
              nb.tasp_all_links.area_um2(),
              100.0 * nb.tasp_all_links.area_um2() / nb.total_area_um2());

  const double noc_dyn =
      nb.routers.dynamic_uw() + nb.tasp_all_links.dynamic_uw();
  std::printf("\nNoC dynamic power (paper: routers 99.44%%, TASP on all 48 "
              "links 0.56%%):\n");
  std::printf("  %-18s %12.1f uW  %6.2f%%\n", "routers",
              nb.routers.dynamic_uw(),
              100.0 * nb.routers.dynamic_uw() / noc_dyn);
  std::printf("  %-18s %12.1f uW  %6.2f%%\n\n", "TASP x48",
              nb.tasp_all_links.dynamic_uw(),
              100.0 * nb.tasp_all_links.dynamic_uw() / noc_dyn);
  return 0;
}
